// Package experiments reproduces every table and figure of the paper's
// evaluation (§7) on the simulated testbed. Each Fig*/Table* function is
// a self-contained driver returning structured results; cmd/redplane-bench
// prints them in the paper's format and the root bench_test.go wraps them
// as Go benchmarks. The Scale parameter shrinks workloads for CI; the
// shipped defaults match the paper's methodology (packet counts, rates
// and sweep points) at simulation-tractable magnitudes, documented per
// experiment in EXPERIMENTS.md.
package experiments

import (
	"math/rand"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/metrics"
	"redplane/internal/netsim"
	"redplane/internal/packet"
	"redplane/internal/topo"
	"redplane/internal/trace"
)

// Address plan shared by the experiments.
var (
	intClientIP = packet.MakeAddr(10, 0, 0, 50) // internal client (rack 0)
	extServerIP = packet.MakeAddr(100, 0, 0, 9) // server outside the DC
	natPublicIP = packet.MakeAddr(203, 0, 113, 1)
	lbVIP       = packet.MakeAddr(203, 0, 113, 10)
	intPrefix   = packet.MakeAddr(10, 0, 0, 0)
	intMask     = packet.MakeAddr(255, 0, 0, 0)
)

// echoServer makes a host bounce application traffic back to its sender,
// preserving the RedPlane-relevant headers so the reverse direction
// exercises the switch too. Replies come from the packet reuse pool:
// the echo loop is the experiments' hottest clone site, and every reply
// terminates at the client's rttRecorder, which releases it.
func echoServer(h *topo.Host) {
	h.Handler = func(f *netsim.Frame) {
		p := f.Pkt
		if p == nil {
			return
		}
		r := p.ClonePooled()
		r.IP.Src, r.IP.Dst = p.IP.Dst, p.IP.Src
		switch {
		case r.HasTCP:
			r.TCP.SrcPort, r.TCP.DstPort = p.TCP.DstPort, p.TCP.SrcPort
			r.TCP.Flags = packet.FlagACK
			if p.TCP.Flags.Has(packet.FlagSYN) {
				r.TCP.Flags |= packet.FlagSYN
			}
		case r.HasUDP:
			r.UDP.SrcPort, r.UDP.DstPort = p.UDP.DstPort, p.UDP.SrcPort
		}
		// Replies from the internet side travel unencapsulated: a real
		// PDN does not speak GTP, and keying the reverse path on the
		// tunnel ID would fight the fabric's 5-tuple ECMP affinity.
		r.HasGTP = false
		h.Send(netsim.DataFrame(r))
	}
}

// rttRecorder records round-trip latency of echoed packets at the
// client. The client is the terminal consumer of every echoed reply, so
// after recording it returns the packet to the reuse pool (replies
// originate in echoServer as pooled clones; nothing downstream retains
// them).
func rttRecorder(sim *netsim.Sim, h *topo.Host, lat *metrics.Latency) {
	h.Handler = func(f *netsim.Frame) {
		if f.Pkt == nil {
			return
		}
		if f.Pkt.SentAt > 0 {
			lat.Add(float64(int64(sim.Now()) - f.Pkt.SentAt))
		}
		f.Pkt.Release()
		f.Pkt = nil
	}
}

// replay injects trace items from the client with the given inter-packet
// gap, stamping send times. If firstSYN is set, each flow's first packet
// carries SYN (stateful firewall establishment).
func replay(sim *netsim.Sim, h *topo.Host, items []trace.Item, gap time.Duration, firstSYN bool) {
	for i, it := range items {
		it := it
		sim.At(sim.Now()+netsim.Time(i)*netsim.Duration(gap)+1, func() {
			p := it.Pkt
			if firstSYN && p.HasTCP && p.Seq == 1 {
				p.TCP.Flags |= packet.FlagSYN
			}
			p.SentAt = int64(sim.Now())
			h.SendPacket(p)
		})
	}
}

// replayStaggered injects the trace with each flow starting at a random
// offset within span and its packets spaced by perFlowGap — the arrival
// pattern of a real trace, where new flows appear throughout rather than
// all at once (keeping control-plane flow setups from queueing behind
// each other, as on the paper's testbed).
func replayStaggered(sim *netsim.Sim, h *topo.Host, items []trace.Item,
	span, perFlowGap time.Duration, firstSYN bool, seed int64) {
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	starts := map[int]netsim.Time{}
	counts := map[int]int{}
	for _, it := range items {
		it := it
		st, ok := starts[it.FlowIdx]
		if !ok {
			st = netsim.Time(rng.Int63n(int64(netsim.Duration(span))))
			starts[it.FlowIdx] = st
		}
		at := st + netsim.Time(counts[it.FlowIdx])*netsim.Duration(perFlowGap) + 1
		counts[it.FlowIdx]++
		sim.At(at, func() {
			p := it.Pkt
			if firstSYN && p.HasTCP && p.Seq == 1 {
				p.TCP.Flags |= packet.FlagSYN
			}
			p.SentAt = int64(sim.Now())
			h.SendPacket(p)
		})
	}
}

// latencyScenario wires one app deployment with an internal client and an
// external echo server, replays a trace, and returns the RTT
// distribution. The configure hook adapts the deployment (service IPs,
// store init).
type latencyScenario struct {
	cfg      redplane.DeploymentConfig
	items    []trace.Item
	gap      time.Duration
	span     time.Duration // staggered flow starts over this window (0 = sequential replay)
	firstSYN bool
	// clientOutside places the traffic source outside the DC (LB, KV);
	// otherwise the client is internal (NAT/FW direction).
	clientOutside bool
	serviceIPs    []packet.Addr
	seed          int64
}

// run executes the scenario for the given virtual duration and returns
// the latency distribution.
func (sc *latencyScenario) run(dur time.Duration) *metrics.Latency {
	d := redplane.NewDeployment(sc.cfg)
	for _, ip := range sc.serviceIPs {
		d.RegisterServiceIP(ip)
	}
	var client, server *topo.Host
	if sc.clientOutside {
		client = d.AddClient(0, "client", extServerIP)
		server = d.AddServer(0, "server", intClientIP)
	} else {
		client = d.AddServer(0, "client", intClientIP)
		server = d.AddClient(0, "server", extServerIP)
	}
	echoServer(server)
	lat := &metrics.Latency{}
	rttRecorder(d.Sim, client, lat)
	if sc.span > 0 {
		replayStaggered(d.Sim, client, sc.items, sc.span, sc.gap, sc.firstSYN, sc.seed)
	} else {
		replay(d.Sim, client, sc.items, sc.gap, sc.firstSYN)
	}
	d.RunFor(dur)
	return lat
}

// natTrace builds the replayed NAT/FW workload: internal client flows to
// an external server with trace-like packet sizes.
func natTrace(seed int64, packets, flows int) []trace.Item {
	rng := rand.New(rand.NewSource(seed))
	return trace.Flows(rng, trace.FlowConfig{
		Flows: flows, Packets: packets, ZipfS: 0.9,
		Src: intClientIP, Dst: extServerIP, DstPort: 80, BasePort: 2000,
	})
}

// newNAT builds a NAT app instance with the shared address plan.
func newNAT() *apps.NAT {
	return &apps.NAT{InternalPrefix: intPrefix, InternalMask: intMask, PublicIP: natPublicIP}
}

// randSource is a convenience wrapper for a fresh seeded RNG.
func randSource(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// packet4 aliases packet.MakeAddr to keep experiment files terse.
func packet4(a, b, c, d byte) packet.Addr { return packet.MakeAddr(a, b, c, d) }

// newTinyPacket builds a minimum-size TCP packet for rate experiments.
func newTinyPacket(src, dst packet.Addr, sport uint16) *packet.Packet {
	return packet.NewTCP(src, dst, sport, 80, packet.FlagACK, 0)
}

// gtpData builds a minimum-size EPC user-plane packet for user teid.
func gtpData(src, dst packet.Addr, teid uint32, seq int) *packet.Packet {
	p := packet.NewUDP(src, dst, 40000, packet.GTPPort, 0)
	p.HasGTP = true
	p.GTP = packet.GTP{Version: 1, MsgType: packet.GTPMsgData, TEID: teid}
	p.Seq = uint64(seq)
	return p
}

// localInit adapts a shared allocator to the per-switch LocalInit hook
// (for baselines where switches may share one logical pool).
func localInit(a *apps.NATAllocator) func(int, packet.FiveTuple) []uint64 {
	return func(_ int, key packet.FiveTuple) []uint64 { return a.Init(key) }
}

// localInitLB adapts a load-balancer pool to the LocalInit hook.
func localInitLB(p *apps.LBPool) func(int, packet.FiveTuple) []uint64 {
	return func(_ int, key packet.FiveTuple) []uint64 { return p.Init(key) }
}

// gtpSignal builds a session-establishment signaling message.
func gtpSignal(src, dst packet.Addr, teid uint32) *packet.Packet {
	p := packet.NewUDP(src, dst, 40000, packet.GTPPort, 0)
	p.HasGTP = true
	p.GTP = packet.GTP{Version: 1, MsgType: packet.GTPMsgSignaling, TEID: teid, Len: uint16(teid)}
	return p
}
