package experiments

import (
	"fmt"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/netsim"
	"redplane/internal/packet"
	"redplane/internal/topo"
)

// ThroughputRow compares one application's forwarding rate with and
// without RedPlane.
type ThroughputRow struct {
	App          string
	BaselineMpps float64
	RedPlaneMpps float64
}

// String renders the row.
func (r ThroughputRow) String() string {
	return fmt.Sprintf("%-16s baseline=%.3f Mpps  redplane=%.3f Mpps (%.0f%%)",
		r.App, r.BaselineMpps, r.RedPlaneMpps, 100*r.RedPlaneMpps/r.BaselineMpps)
}

// Fig12Result is the Fig. 12 reproduction: data-plane throughput impact.
type Fig12Result struct {
	Rows []ThroughputRow
	// FabricGbps is the scaled-down fabric rate used (the paper's
	// testbed bottlenecked at 122.5 Mpps on 100 Gbps links; the
	// simulation preserves the ratios at a tractable packet rate).
	FabricGbps float64
}

// fig12Fabric is the scaled fabric: 1 Gbps links mean 64-byte packets
// bottleneck near 1.95 Mpps, with the store service time calibrated so
// the write path saturates at roughly half that — the paper's observed
// Sync-Counter behaviour.
var fig12Fabric = netsim.LinkConfig{Delay: 800 * time.Nanosecond, Bandwidth: 1e9,
	QueueLimit: 2 * time.Millisecond}

// Fig12 measures delivered packet rate per application with and without
// fault tolerance under overload from three senders.
func Fig12(seed int64, window time.Duration) Fig12Result {
	if window == 0 {
		window = 20 * time.Millisecond
	}
	out := Fig12Result{FabricGbps: fig12Fabric.Bandwidth / 1e9}

	type variant struct {
		name   string
		mk     func(bool) redplane.DeploymentConfig
		useGTP bool
		toVIP  bool
	}
	nat := newNAT()
	natAlloc := apps.NewNATAllocator(nat)
	natAllocLocal := apps.NewNATAllocator(nat)
	pool := apps.NewLBPool(lbVIP, []redplane.Addr{extServerIP})
	poolLocal := apps.NewLBPool(lbVIP, []redplane.Addr{extServerIP})

	variants := []variant{
		{name: "NAT", mk: func(ft bool) redplane.DeploymentConfig {
			cfg := redplane.DeploymentConfig{NewApp: func(int) redplane.App { return newNAT() }}
			if ft {
				cfg.InitState = natAlloc.Init
			} else {
				cfg.Baseline.NoStore = true
				cfg.Baseline.LocalInit = localInit(natAllocLocal)
			}
			return cfg
		}},
		{name: "Firewall", mk: func(ft bool) redplane.DeploymentConfig {
			cfg := redplane.DeploymentConfig{NewApp: func(int) redplane.App {
				return &apps.Firewall{InternalPrefix: intPrefix, InternalMask: intMask}
			}}
			cfg.Baseline.NoStore = !ft
			return cfg
		}},
		{name: "Load balancer", toVIP: true, mk: func(ft bool) redplane.DeploymentConfig {
			cfg := redplane.DeploymentConfig{NewApp: func(int) redplane.App {
				return &apps.LoadBalancer{VIP: lbVIP}
			}}
			if ft {
				cfg.InitState = pool.Init
			} else {
				cfg.Baseline.NoStore = true
				cfg.Baseline.LocalInit = localInitLB(poolLocal)
			}
			return cfg
		}},
		{name: "EPC-SGW", useGTP: true, mk: func(ft bool) redplane.DeploymentConfig {
			cfg := redplane.DeploymentConfig{NewApp: func(int) redplane.App { return &apps.EPCSGW{} }}
			cfg.Baseline.NoStore = !ft
			return cfg
		}},
		{name: "HH-detector", mk: func(ft bool) redplane.DeploymentConfig {
			cfg := redplane.DeploymentConfig{
				NewApp: func(i int) redplane.App {
					return apps.NewHeavyHitter(i, 1, 0, func(*redplane.Packet) int { return 0 })
				},
			}
			if ft {
				cfg.Mode = redplane.BoundedInconsistency
				cfg.SnapshotSlots = 192
			} else {
				cfg.Baseline.NoStore = true
			}
			return cfg
		}},
		{name: "Sync-Counter", mk: func(ft bool) redplane.DeploymentConfig {
			cfg := redplane.DeploymentConfig{NewApp: func(int) redplane.App { return apps.SyncCounter{} }}
			cfg.Baseline.NoStore = !ft
			return cfg
		}},
	}

	for _, v := range variants {
		base := fig12Run(seed, v.mk(false), window, v.useGTP, v.toVIP)
		ft := fig12Run(seed, v.mk(true), window, v.useGTP, v.toVIP)
		out.Rows = append(out.Rows, ThroughputRow{App: v.name, BaselineMpps: base, RedPlaneMpps: ft})
	}
	return out
}

// fig12Run blasts 64-byte packets from three rack senders toward an
// external sink through the given deployment and returns the delivered
// rate in Mpps.
func fig12Run(seed int64, cfg redplane.DeploymentConfig, window time.Duration, useGTP, toVIP bool) float64 {
	cfg.Seed = seed
	cfg.Fabric = fig12Fabric
	cfg.StoreService = 500 * time.Nanosecond
	d := redplane.NewDeployment(cfg)
	d.RegisterServiceIP(natPublicIP)
	d.RegisterServiceIP(lbVIP)

	sink := d.AddClient(0, "sink", extServerIP)
	delivered := 0
	counting := false
	sink.Handler = func(f *netsim.Frame) {
		if counting {
			delivered++
		}
	}

	senders := []*topo.Host{
		d.AddServer(0, "snd0", packet4(10, 0, 0, 51)),
		d.AddServer(1, "snd1", packet4(10, 1, 0, 51)),
		d.AddServer(0, "snd2", packet4(10, 0, 0, 52)),
	}

	// Warm up: establish every flow's state (control-plane inserts,
	// leases) before the measured window, as steady-state throughput
	// measurements do.
	for sport := 0; sport < 64; sport++ {
		for si, snd := range senders {
			_ = si
			if useGTP {
				snd.SendPacket(gtpSignal(snd.IP, extServerIP, uint32(10000*(si+1))+uint32(1000+sport)))
			} else if toVIP {
				p := newTinyPacket(snd.IP, lbVIP, uint16(1000+sport))
				p.TCP.DstPort = 443
				p.TCP.Flags |= packet.FlagSYN
				snd.SendPacket(p)
			} else {
				p := newTinyPacket(snd.IP, extServerIP, uint16(1000+sport))
				p.TCP.Flags |= packet.FlagSYN
				snd.SendPacket(p)
			}
		}
	}
	warmup := 25 * time.Millisecond
	d.RunFor(warmup)
	counting = true
	start := d.Now()
	end := start + redplane.Time(window.Nanoseconds())

	// Each sender offers ~0.67 Mpps: 2 Mpps total into a ~1.95 Mpps
	// fabric bottleneck — overloaded, but not so deep that the protocol
	// path spends itself on duplicates.
	const gapNs = 1500
	for si, snd := range senders {
		si, snd := si, snd
		n := 0
		d.Sim.Every(start+netsim.Time(si*100+1), gapNs, func() bool {
			n++
			sport := uint16(1000 + (n % 64))
			var p *redplane.Packet
			switch {
			case useGTP:
				// Disjoint TEID ranges per sender keep each user's
				// traffic on one path, the ECMP/partition-key affinity
				// §2 assumes. One packet in 18 is signaling (a state
				// write), the paper's mixed-read/write ratio.
				teid := uint32(10000*(si+1)) + uint32(sport)
				if n%18 == 17 {
					p = gtpSignal(snd.IP, extServerIP, teid)
				} else {
					p = gtpData(snd.IP, extServerIP, teid, n)
				}
			case toVIP:
				p = newTinyPacket(snd.IP, lbVIP, sport)
				p.TCP.DstPort = 443
			default:
				p = newTinyPacket(snd.IP, extServerIP, sport)
			}
			snd.SendPacket(p)
			return d.Sim.Now() < end
		})
	}
	d.RunFor(time.Duration(end) + 5*time.Millisecond)
	return float64(delivered) / window.Seconds() / 1e6
}
