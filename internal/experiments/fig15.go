package experiments

import (
	"fmt"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/netsim"
	"redplane/internal/pipeline"
)

// Fig15Point is one (traffic rate, request loss) buffer measurement.
type Fig15Point struct {
	// RateGbps is the offered data rate in scaled fabric units;
	// PaperGbps is the corresponding point of the paper's 20-100 Gbps
	// sweep (the sweep fraction times 100).
	RateGbps  float64
	PaperGbps float64
	// LossPercent is the emulated protocol request loss.
	LossPercent float64
	// MaxBufferKB is the peak retransmission-buffer occupancy observed
	// (the buf_bytes gauge's high-water mark).
	MaxBufferKB float64
	// MeanBufferKB is the time-averaged occupancy over the run, from the
	// sampled buf_bytes series.
	MeanBufferKB float64
}

// String renders the point.
func (p Fig15Point) String() string {
	return fmt.Sprintf("rate=%.2f Gbps (paper: %3.0f Gbps) loss=%.0f%%  buffer=%.2f KB (mean %.2f KB)",
		p.RateGbps, p.PaperGbps, p.LossPercent, p.MaxBufferKB, p.MeanBufferKB)
}

// Fig15Result is the Fig. 15 reproduction: switch packet-buffer occupancy
// of the mirroring-based request buffering, versus traffic rate and
// request loss rate, for a write-per-packet application.
type Fig15Result struct {
	Points []Fig15Point
}

// Fig15 sweeps offered rate (fractions of the scaled fabric) and emulated
// request loss (0/1/2%, dropped at the switch exactly as §7.4 does),
// recording peak truncated-request bytes held for retransmission.
func Fig15(seed int64, window time.Duration) Fig15Result {
	if window == 0 {
		window = 10 * time.Millisecond
	}
	var out Fig15Result
	for _, lossPct := range []float64{0, 1, 2} {
		for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
			out.Points = append(out.Points, fig15Run(seed, frac, lossPct, window))
		}
	}
	return out
}

func fig15Run(seed int64, frac, lossPct float64, window time.Duration) Fig15Point {
	proto := redplane.DefaultProtocolConfig()
	proto.RetransTimeout = 5 * time.Millisecond
	// The occupancy measurement must not clip against the buffer bound
	// (the paper's ASIC has "a few tens of MB" of packet buffer).
	proto.MirrorBufferLimit = 32 * 1024 * 1024
	d := redplane.NewDeployment(redplane.DeploymentConfig{
		Seed:         seed,
		NewApp:       func(int) redplane.App { return apps.SyncCounter{} },
		Protocol:     proto,
		Ablation:     redplane.AblationConfig{EmulatedRequestLoss: lossPct / 100},
		Obs:          redplane.ObsConfig{SamplePeriod: 250 * time.Microsecond},
		Fabric:       fig12Fabric,
		StoreService: time.Microsecond,
	})
	snd := d.AddServer(0, "snd", packet4(10, 0, 0, 51))
	d.AddClient(0, "sink", extServerIP)

	// Offered rate: frac of the write path's non-saturated range (the
	// paper's sweep stays below its testbed's saturation too). Requests
	// are ~2.2x the data bytes, so the 1 Gbps request link saturates
	// near 0.45 Gbps of data; sweep up to 0.4.
	maxData := 0.4 * fig12Fabric.Bandwidth
	pps := frac * maxData / (64 * 8)
	gap := netsim.Time(1e9 / pps)
	n := 0
	d.Sim.Every(1, gap, func() bool {
		n++
		snd.SendPacket(newTinyPacket(snd.IP, extServerIP, uint16(1000+n%64)))
		return d.Sim.Now() < redplane.Time(window.Nanoseconds())
	})
	d.RunFor(window + 10*time.Millisecond)

	// Both occupancy figures come from the observability layer: the peak
	// from the snapshot's gauge high-water mark, the mean from the
	// periodically sampled buf_bytes series.
	maxBuf := 0
	for _, st := range d.Snapshot().Switches {
		if st.MaxBufBytes > maxBuf {
			maxBuf = st.MaxBufBytes
		}
	}
	var meanBuf float64
	for i := 0; i < d.Switches(); i++ {
		name := fmt.Sprintf("switch/redplane-sw%d/buf_bytes", i)
		if s := d.Observe().Series(name); s != nil {
			meanBuf += s.Mean()
		}
	}
	return Fig15Point{
		RateGbps:     frac * maxData / 1e9,
		PaperGbps:    frac * 100,
		LossPercent:  lossPct,
		MaxBufferKB:  float64(maxBuf) / 1024,
		MeanBufferKB: meanBuf / 1024,
	}
}

// Table2Result is the Appendix E / Table 2 reproduction: additional
// switch ASIC resources consumed by the RedPlane data plane at 100k
// concurrent flows.
type Table2Result struct {
	Rows  []pipeline.Report
	Flows int
}

// Table2 reports the resource model's output.
func Table2(flows int) Table2Result {
	if flows == 0 {
		flows = 100_000
	}
	return Table2Result{
		Rows:  pipeline.ReportUsage(pipeline.DefaultBudget(), pipeline.DefaultRedPlaneCost(), flows),
		Flows: flows,
	}
}
