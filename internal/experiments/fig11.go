package experiments

import (
	"fmt"
	"time"

	"redplane"
	"redplane/internal/apps"
)

// Fig11Point is one (snapshot frequency, sketch count) measurement.
type Fig11Point struct {
	FrequencyHz int
	Sketches    int
	Mbps        float64
}

// String renders the point.
func (p Fig11Point) String() string {
	return fmt.Sprintf("freq=%4d Hz sketches=%d  %.2f Mbps", p.FrequencyHz, p.Sketches, p.Mbps)
}

// Fig11Result is the Fig. 11 reproduction: absolute replication bandwidth
// of the heavy-hitter detector versus snapshot frequency and sketch
// count.
type Fig11Result struct {
	Points []Fig11Point
}

// Fig11 sweeps snapshot frequency (32–1024 Hz) and sketch count (3–5
// rows per the paper's figure), measuring protocol bandwidth over a
// fixed window. Only one switch carries traffic; its protocol bytes are
// the replication bandwidth.
func Fig11(seed int64) Fig11Result {
	var out Fig11Result
	const window = 250 * time.Millisecond
	for _, sketches := range []int{3, 4, 5} {
		for _, freq := range []int{32, 64, 128, 256, 512, 1024} {
			period := time.Second / time.Duration(freq)
			proto := redplane.DefaultProtocolConfig()
			proto.SnapshotPeriod = period
			sketches := sketches
			d := redplane.NewDeployment(redplane.DeploymentConfig{
				Seed: seed, Mode: redplane.BoundedInconsistency,
				SnapshotSlots: sketches * 64,
				StoreService:  time.Microsecond,
				Protocol:      proto,
				NewApp: func(i int) redplane.App {
					// "n sketches" in the figure's sense: n hash rows of
					// 64 slots, replicated each period.
					return apps.NewHeavyHitterRows(i, 1, sketches, 64, 0,
						func(*redplane.Packet) int { return 0 })
				},
			})
			client := d.AddServer(0, "client", intClientIP)
			d.AddClient(0, "sink", extServerIP)
			// Background traffic keeps the sketches dirty.
			d.Sim.Every(1, 50_000, func() bool { // one packet per 50 µs
				p := newTinyPacket(client.IP, extServerIP, uint16(d.Sim.Now()%50000))
				client.SendPacket(p)
				return d.Sim.Now() < redplane.Time(window.Nanoseconds())
			})
			d.RunFor(window)
			var bytes uint64
			for i := 0; i < d.Switches(); i++ {
				bytes += d.Switch(i).Stats().ProtoTxBytes + d.Switch(i).Stats().ProtoRxBytes
			}
			mbps := float64(bytes) * 8 / window.Seconds() / 1e6
			out.Points = append(out.Points, Fig11Point{
				FrequencyHz: freq, Sketches: sketches, Mbps: mbps,
			})
		}
	}
	return out
}
