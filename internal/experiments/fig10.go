package experiments

import (
	"fmt"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/trace"
)

// BandwidthRow is one application's traffic breakdown.
type BandwidthRow struct {
	App string
	// OriginalBytes is data-packet traffic entering the switches;
	// ReqBytes and RespBytes are RedPlane protocol traffic.
	OriginalBytes, ReqBytes, RespBytes uint64
}

// OverheadPercent returns the share of total bandwidth consumed by
// RedPlane messages (Fig. 10's stacked bars).
func (r BandwidthRow) OverheadPercent() float64 {
	total := r.OriginalBytes + r.ReqBytes + r.RespBytes
	if total == 0 {
		return 0
	}
	return 100 * float64(r.ReqBytes+r.RespBytes) / float64(total)
}

// String renders the row.
func (r BandwidthRow) String() string {
	return fmt.Sprintf("%-16s original=%5.1f%%  redplane=%5.1f%%",
		r.App, 100-r.OverheadPercent(), r.OverheadPercent())
}

// Fig10Result is the Fig. 10 reproduction: replication bandwidth overhead
// per application under minimum-size-packet traffic.
type Fig10Result struct {
	Rows []BandwidthRow
}

// Fig10 measures per-app bandwidth overheads with 64-byte packets and
// byte counters instrumented at the switches (§7.2).
func Fig10(seed int64, packets int) Fig10Result {
	// Long-lived flows: the paper's bandwidth runs blast minimum-size
	// packets continuously, so per-flow setup cost is fully amortized.
	flows := packets / 1000
	if flows < 4 {
		flows = 4
	}
	gap := 2 * time.Microsecond
	dur := time.Duration(packets)*gap + 100*time.Millisecond
	tiny := func() int { return 0 } // 64-byte frames after padding

	var out Fig10Result
	run := func(name string, cfg redplane.DeploymentConfig, items []trace.Item) {
		cfg.Seed = seed
		d := redplane.NewDeployment(cfg)
		d.RegisterServiceIP(natPublicIP)
		d.RegisterServiceIP(lbVIP)
		client := d.AddServer(0, "client", intClientIP)
		d.AddClient(0, "sink", extServerIP) // one-way sink
		replayStaggered(d.Sim, client, items, dur/2, gap, name == "Firewall", seed)
		d.RunFor(dur + 200*time.Millisecond)
		row := BandwidthRow{App: name}
		for i := 0; i < d.Switches(); i++ {
			st := d.Switch(i).Stats()
			row.OriginalBytes += st.DataBytesIn
			row.ReqBytes += st.ProtoTxBytes
			row.RespBytes += st.ProtoRxBytes
		}
		out.Rows = append(out.Rows, row)
	}

	tinyFlows := func() []trace.Item {
		return trace.Flows(randSource(seed), trace.FlowConfig{
			Flows: flows, Packets: packets, ZipfS: 0.9, PayloadFn: tiny,
			Src: intClientIP, Dst: extServerIP, DstPort: 80, BasePort: 2000,
		})
	}

	{
		nat := newNAT()
		alloc := apps.NewNATAllocator(nat)
		run("NAT", redplane.DeploymentConfig{InitState: alloc.Init,
			NewApp: func(int) redplane.App { return newNAT() }}, tinyFlows())
	}
	run("Firewall", redplane.DeploymentConfig{
		NewApp: func(int) redplane.App {
			return &apps.Firewall{InternalPrefix: intPrefix, InternalMask: intMask}
		}}, tinyFlows())
	{
		pool := apps.NewLBPool(lbVIP, []redplane.Addr{extServerIP})
		run("Load balancer", redplane.DeploymentConfig{InitState: pool.Init,
			NewApp: func(int) redplane.App { return &apps.LoadBalancer{VIP: lbVIP} }},
			trace.Flows(randSource(seed), trace.FlowConfig{
				Flows: flows, Packets: packets, ZipfS: 0.9, PayloadFn: tiny,
				Src: intClientIP, Dst: lbVIP, DstPort: 443, BasePort: 3000,
			}))
	}
	run("EPC-SGW", redplane.DeploymentConfig{
		NewApp: func(int) redplane.App { return &apps.EPCSGW{} }},
		trace.EPC(randSource(seed), trace.EPCConfig{
			Users: flows, Packets: packets, SignalingEvery: 17,
			Src: intClientIP, Dst: extServerIP,
		}))
	{
		// The fabric here runs ~1000x below the paper's 207 Mpps, so the
		// snapshot period scales with it (see EXPERIMENTS.md): the ratio
		// of snapshot bandwidth to data bandwidth is what Fig. 10 shows.
		proto := redplane.DefaultProtocolConfig()
		proto.SnapshotPeriod = 100 * time.Millisecond
		run("HH-detector", redplane.DeploymentConfig{
			Mode: redplane.BoundedInconsistency, SnapshotSlots: 192,
			StoreService: time.Microsecond, Protocol: proto,
			NewApp: func(i int) redplane.App {
				return apps.NewHeavyHitter(i, 1, 0, func(*redplane.Packet) int { return 0 })
			}}, tinyFlows())
	}
	run("Sync-Counter", redplane.DeploymentConfig{
		NewApp: func(int) redplane.App { return apps.SyncCounter{} }}, tinyFlows())
	return out
}
