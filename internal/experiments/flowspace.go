package experiments

import (
	"fmt"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/netsim"
	"redplane/internal/topo"
)

// FlowspaceChainCounts is the chain-count sweep of the scale-out
// experiment: single chain (the classic deployment) doubling up to
// eight.
var FlowspaceChainCounts = []int{1, 2, 4, 8}

// flowspaceFlowsPerChain sets the workload width: enough distinct
// five-tuples per chain that the consistent-hash ring's key-mass
// deviation, not flow-count quantization, dominates the per-chain
// spread.
const flowspaceFlowsPerChain = 96

// FlowspaceScaleRow is one chain-count point of the weak-scaling sweep:
// offered load grows with the chain count, so a routing layer that
// spreads flows keeps per-chain goodput flat while aggregate goodput
// climbs.
type FlowspaceScaleRow struct {
	Chains int
	// OfferedMpps is the aggregate open-loop offered rate
	// (flowspaceOfferedPerChain per chain).
	OfferedMpps float64
	// GoodputMpps is the aggregate delivered rate at the sink over the
	// measurement window.
	GoodputMpps float64
	// PerChainMpps is GoodputMpps/Chains — the weak-scaling invariant
	// that must stay flat as chains are added.
	PerChainMpps float64
	// ChainSpread is max/min of the per-chain applied-write counts
	// (1.0 = perfectly even): the ring's load balance measured at the
	// store heads, not inferred from key mass.
	ChainSpread float64
}

// String renders the row.
func (r FlowspaceScaleRow) String() string {
	return fmt.Sprintf("chains=%d offered=%.2f Mpps goodput=%.3f Mpps per-chain=%.3f Mpps spread=%.2f",
		r.Chains, r.OfferedMpps, r.GoodputMpps, r.PerChainMpps, r.ChainSpread)
}

// FlowspaceScaleResult is the scale-out sweep plus its two acceptance
// scalars.
type FlowspaceScaleResult struct {
	Rows []FlowspaceScaleRow
	// ScaleUp is aggregate goodput at the widest point over the
	// single-chain aggregate — the scale-out win (ideal: the chain
	// ratio).
	ScaleUp float64
	// Flatness is the worst per-chain deviation from the single-chain
	// point, |PerChain(N)/PerChain(1) − 1| maximized over N. The
	// acceptance bar is ≤ 0.10: adding chains must not cost any chain
	// its goodput.
	Flatness float64
}

// flowspaceOfferedPerChain is the per-chain offered rate in Mpps. It
// sits above a chain's unbatched service capacity (1/StoreService =
// 0.5 M writes/s) but inside its egress-batched capacity, so a chain
// absorbing its fair share of flows delivers the offered rate — while
// a routing collapse that doubles a chain's share pushes that chain
// past saturation and shows up as lost aggregate goodput and a wide
// per-chain spread.
const flowspaceOfferedPerChain = 1.2

// FlowspaceScale measures scale-out of the flow-space sharded store: a
// Sync-Counter deployment (every packet's release gates on a
// replicated store write) whose chains the consistent-hash ring routes
// by five-tuple, under weak scaling — flowspaceOfferedPerChain Mpps
// and flowspaceFlowsPerChain flows per chain, swept over
// FlowspaceChainCounts. window is the per-point measurement window
// (0 = 6ms). Aggregate goodput should climb with the chain count and
// per-chain goodput stay flat: the store pipeline is the explicit
// bottleneck (1 µs of service per message), so scaling can only come
// from the ring actually spreading the flow space.
func FlowspaceScale(seed int64, window time.Duration) FlowspaceScaleResult {
	if window == 0 {
		window = 6 * time.Millisecond
	}
	var out FlowspaceScaleResult
	for _, chains := range FlowspaceChainCounts {
		out.Rows = append(out.Rows, flowspaceScaleRun(seed, chains, window))
	}
	base := out.Rows[0]
	last := out.Rows[len(out.Rows)-1]
	if base.GoodputMpps > 0 {
		out.ScaleUp = last.GoodputMpps / base.GoodputMpps
	}
	for _, r := range out.Rows[1:] {
		dev := r.PerChainMpps/base.PerChainMpps - 1
		if dev < 0 {
			dev = -dev
		}
		if dev > out.Flatness {
			out.Flatness = dev
		}
	}
	return out
}

// flowspaceScaleRun drives one chain-count point and returns its row.
func flowspaceScaleRun(seed int64, chains int, window time.Duration) FlowspaceScaleRow {
	proto := redplane.DefaultProtocolConfig()
	proto.FlushWindow = 10 * time.Microsecond // chaos-default egress batching
	d := redplane.NewDeployment(redplane.DeploymentConfig{
		Seed:         seed,
		NewApp:       func(int) redplane.App { return apps.SyncCounter{} },
		Protocol:     proto,
		StoreService: throughputService,
		StoreShards:  chains,
		FlowSpace:    redplane.FlowSpaceConfig{Enabled: chains > 1},
	})

	sink := d.AddClient(0, "sink", extServerIP)
	delivered := 0
	counting := false
	sink.Handler = func(f *netsim.Frame) {
		if counting && f.Pkt != nil {
			delivered++
		}
	}

	// One sender per chain's worth of offered load, alternating racks so
	// both aggregation switches carry traffic.
	senders := make([]*topo.Host, chains)
	for i := range senders {
		senders[i] = d.AddServer(i%2, fmt.Sprintf("snd%d", i),
			packet4(10, byte(i%2), 1, byte(50+i)))
	}

	// Establish every flow's lease before measuring: flow f belongs to
	// sender f / flowspaceFlowsPerChain and port 1000+f — the ring, not
	// the sender, decides its chain.
	flows := flowspaceFlowsPerChain * chains
	for f := 0; f < flows; f++ {
		snd := senders[f/flowspaceFlowsPerChain]
		snd.SendPacket(newTinyPacket(snd.IP, extServerIP, uint16(1000+f)))
	}
	d.RunFor(25 * time.Millisecond)

	// Applied-write watermarks at the chain heads bracket the window so
	// the per-chain spread measures only steady-state load.
	applied0 := make([]uint64, chains)
	for ch := 0; ch < chains; ch++ {
		applied0[ch] = d.Cluster.Head(ch).Stats().Shard.ReplApplied
	}
	counting = true
	start := d.Now()
	end := start + redplane.Time(window.Nanoseconds())

	// flowspaceOfferedPerChain Mpps per sender, round-robined over the
	// sender's flows.
	perChain := float64(flowspaceOfferedPerChain)
	gapNs := int64(1e3 / perChain)
	for si, snd := range senders {
		si, snd := si, snd
		n := 0
		d.Sim.Every(start+netsim.Time(si*97+1), netsim.Duration(time.Duration(gapNs)), func() bool {
			n++
			f := si*flowspaceFlowsPerChain + n%flowspaceFlowsPerChain
			snd.SendPacket(newTinyPacket(snd.IP, extServerIP, uint16(1000+f)))
			return d.Sim.Now() < end
		})
	}
	d.RunFor(time.Duration(end) + 5*time.Millisecond)

	row := FlowspaceScaleRow{
		Chains:      chains,
		OfferedMpps: flowspaceOfferedPerChain * float64(chains),
		GoodputMpps: float64(delivered) / window.Seconds() / 1e6,
	}
	row.PerChainMpps = row.GoodputMpps / float64(chains)
	var min, max uint64
	for ch := 0; ch < chains; ch++ {
		n := d.Cluster.Head(ch).Stats().Shard.ReplApplied - applied0[ch]
		if ch == 0 || n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min > 0 {
		row.ChainSpread = float64(max) / float64(min)
	}
	return row
}
