package experiments

import (
	"fmt"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/netsim"
)

// AblationResult quantifies one design choice by comparing the protocol
// with the mechanism enabled and disabled.
type AblationResult struct {
	Name    string
	With    float64
	Without float64
	Unit    string
	Comment string
}

// String renders the row.
func (a AblationResult) String() string {
	return fmt.Sprintf("%-24s with=%8.3f  without=%8.3f %s  (%s)",
		a.Name, a.With, a.Without, a.Unit, a.Comment)
}

// AblationSequencing measures the Fig. 6 design point: without request
// sequencing, reordered replication requests roll store state backwards.
// Reported: regressions (an applied counter value lower than the one it
// overwrote) per 1000 applied updates.
func AblationSequencing(seed int64) AblationResult {
	run := func(ignoreSeq bool) float64 {
		d := redplane.NewDeployment(redplane.DeploymentConfig{
			Seed:     seed,
			NewApp:   func(int) redplane.App { return apps.SyncCounter{} },
			Ablation: redplane.AblationConfig{StoreIgnoreSeq: ignoreSeq},
			// Heavy jitter on the fabric reorders protocol messages.
			Fabric: netsim.LinkConfig{Delay: 800 * time.Nanosecond,
				Bandwidth: 100e9, Jitter: 20 * time.Microsecond},
		})
		client := d.AddServer(0, "client", intClientIP)
		d.AddClient(0, "sink", extServerIP)
		const flows, perFlow = 40, 50
		for f := 0; f < flows; f++ {
			for i := 0; i < perFlow; i++ {
				f, i := f, i
				d.Sim.After(time.Duration(i)*3*time.Microsecond, func() {
					p := newTinyPacket(client.IP, extServerIP, uint16(2000+f))
					p.Seq = uint64(i + 1)
					client.SendPacket(p)
				})
			}
		}
		d.RunFor(2 * time.Second)
		st := d.Cluster.Head(0).Shard().Stats
		if st.ReplApplied == 0 {
			return 0
		}
		return 1000 * float64(st.Regressions) / float64(st.ReplApplied)
	}
	return AblationResult{
		Name: "request sequencing", Unit: "regressions per 1000 applied",
		With: run(false), Without: run(true),
		Comment: "reordering rolls unsequenced store state backwards (Fig. 6a)",
	}
}

// AblationRetransmission measures §5.2's retransmission mechanism: with
// protocol-request loss, how many acknowledged-at-switch updates reach
// the store durably. Reported: lost updates per 100 applied at the
// switch.
func AblationRetransmission(seed int64) AblationResult {
	run := func(disable bool) float64 {
		d := redplane.NewDeployment(redplane.DeploymentConfig{
			Seed:   seed,
			NewApp: func(int) redplane.App { return apps.SyncCounter{} },
			Ablation: redplane.AblationConfig{
				DisableRetransmit:   disable,
				EmulatedRequestLoss: 0.05,
			},
		})
		client := d.AddServer(0, "client", intClientIP)
		d.AddClient(0, "sink", extServerIP)
		const flows, perFlow = 20, 100
		for f := 0; f < flows; f++ {
			for i := 0; i < perFlow; i++ {
				f, i := f, i
				d.Sim.After(time.Duration(i)*20*time.Microsecond, func() {
					p := newTinyPacket(client.IP, extServerIP, uint16(2000+f))
					p.Seq = uint64(i + 1)
					client.SendPacket(p)
				})
			}
		}
		d.RunFor(2 * time.Second)
		var applied, durable uint64
		for f := 0; f < flows; f++ {
			key := redplane.FiveTuple{Src: client.IP, Dst: extServerIP,
				SrcPort: uint16(2000 + f), DstPort: 80, Proto: 6}
			if vals, ok := d.SwitchFor(key).FlowState(key); ok && len(vals) > 0 {
				applied += vals[0]
			}
			sh := d.Cluster.ShardFor(key)
			if vals, _, ok := d.Cluster.Head(sh).Shard().State(key); ok && len(vals) > 0 {
				durable += vals[0]
			}
		}
		if applied == 0 {
			return 0
		}
		return 100 * float64(applied-durable) / float64(applied)
	}
	return AblationResult{
		Name: "retransmission", Unit: "% updates lost at 5% req loss",
		With: run(false), Without: run(true),
		Comment: "without the mirror loop, dropped requests lose updates forever",
	}
}

// AblationChainLength measures durability's latency price: write-path
// RTT against store chains of one, two, and three replicas (the paper
// attributes 12 of Sync-Counter's 20 µs to its 3-way chain).
func AblationChainLength(seed int64) []AblationResult {
	lat := func(replicas int) float64 {
		sc := &latencyScenario{
			cfg: redplane.DeploymentConfig{Seed: seed, StoreReplicas: replicas,
				NewApp: func(int) redplane.App { return apps.SyncCounter{} }},
			items: natTrace(seed, 2000, 10), gap: 20 * time.Microsecond, seed: seed,
		}
		return sc.run(300*time.Millisecond).Percentile(50) / 1e3
	}
	one, two, three := lat(1), lat(2), lat(3)
	return []AblationResult{
		{Name: "chain length 1->2", Unit: "µs p50 write RTT", With: two, Without: one,
			Comment: "each chain hop adds an inter-rack traversal"},
		{Name: "chain length 2->3", Unit: "µs p50 write RTT", With: three, Without: two,
			Comment: "the paper's prototype uses 3 replicas"},
	}
}

// AblationSnapshotPeriod quantifies bounded inconsistency: updates lost
// at failure as a function of the snapshot period ε.
func AblationSnapshotPeriod(seed int64) []AblationResult {
	loss := func(period time.Duration) float64 {
		proto := redplane.DefaultProtocolConfig()
		proto.SnapshotPeriod = period
		var det []*apps.HeavyHitter
		d := redplane.NewDeployment(redplane.DeploymentConfig{
			Seed: seed, Mode: redplane.BoundedInconsistency,
			SnapshotSlots: 192, Protocol: proto, StoreService: time.Microsecond,
			NewApp: func(i int) redplane.App {
				hh := apps.NewHeavyHitter(i, 1, 0, func(*redplane.Packet) int { return 0 })
				det = append(det, hh)
				return hh
			},
		})
		client := d.AddServer(0, "client", intClientIP)
		d.AddClient(0, "sink", extServerIP)
		const packets = 8000
		for i := 0; i < packets; i++ {
			i := i
			d.Sim.After(time.Duration(i)*5*time.Microsecond, func() {
				client.SendPacket(newTinyPacket(client.IP, extServerIP, uint16(2000+i%64)))
			})
		}
		// Stop MID-traffic: the gap between the live sketches and the
		// store's last complete image is what a failure at this instant
		// would lose — bounded by ε.
		d.RunFor(packets * 5 * time.Microsecond * 3 / 4)
		var liveTotal, imageTotal float64
		for i := 0; i < d.Switches(); i++ {
			hh := det[i]
			var live uint64
			for s := 0; s < 192; s++ {
				v, _ := snapshotPeek(hh, s)
				live += v
			}
			liveTotal += float64(live)
			partKey := apps.HHPartitionKey(i, 0)
			sh := d.Cluster.ShardFor(partKey)
			if img, _ := d.Cluster.Head(sh).Shard().LastSnapshot(partKey); img != nil {
				var tot uint64
				for _, v := range img {
					tot += v
				}
				imageTotal += float64(tot)
			}
		}
		if liveTotal == 0 {
			return 0
		}
		return 100 * (liveTotal - imageTotal) / liveTotal
	}
	return []AblationResult{
		{Name: "snapshot ε = 1ms", Unit: "% of updates at risk", With: loss(time.Millisecond),
			Without: 0, Comment: "lost on failure, bounded by ε"},
		{Name: "snapshot ε = 10ms", Unit: "% of updates at risk", With: loss(10 * time.Millisecond),
			Without: 0, Comment: "larger ε trades bandwidth for exposure"},
	}
}

// snapshotPeek reads a sketch slot's live value without disturbing
// snapshot bookkeeping.
func snapshotPeek(hh *apps.HeavyHitter, slot int) (uint64, bool) {
	return hh.Sketch(0).RowLatest(slot/64, slot%64), true
}

// Ablations runs every ablation at the given seed.
func Ablations(seed int64) []AblationResult {
	var out []AblationResult
	out = append(out, AblationSequencing(seed))
	out = append(out, AblationRetransmission(seed))
	out = append(out, AblationChainLength(seed)...)
	out = append(out, AblationSnapshotPeriod(seed)...)
	out = append(out, AblationMirrorBuffer(seed))
	return out
}

// AblationMirrorBuffer measures the bounded mirror buffer: with a tiny
// buffer, overload sheds update tracking (risking loss under request
// drop); with the default it absorbs in-flight bursts.
func AblationMirrorBuffer(seed int64) AblationResult {
	run := func(limit int) float64 {
		proto := redplane.DefaultProtocolConfig()
		proto.MirrorBufferLimit = limit
		d := redplane.NewDeployment(redplane.DeploymentConfig{
			Seed:     seed,
			NewApp:   func(int) redplane.App { return apps.SyncCounter{} },
			Protocol: proto,
			Ablation: redplane.AblationConfig{EmulatedRequestLoss: 0.02},
			Fabric:   fig12Fabric,
		})
		client := d.AddServer(0, "client", intClientIP)
		d.AddClient(0, "sink", extServerIP)
		n := 0
		d.Sim.Every(1, 1000, func() bool { // 1 Mpps burst
			n++
			client.SendPacket(newTinyPacket(client.IP, extServerIP, uint16(2000+n%32)))
			return n < 10000
		})
		d.RunFor(2 * time.Second)
		var overflow uint64
		for i := 0; i < d.Switches(); i++ {
			overflow += d.Switch(i).Stats().MirrorOverflow
		}
		return float64(overflow)
	}
	return AblationResult{
		Name: "mirror buffer 256KB vs 2KB", Unit: "untracked requests",
		With: run(256 * 1024), Without: run(2 * 1024),
		Comment: "a starved mirror buffer cannot cover losses under bursts",
	}
}
