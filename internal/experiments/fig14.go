package experiments

import (
	"fmt"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/metrics"
	"redplane/internal/tcpsim"
)

// Fig14Series is one run's per-second TCP goodput timeline.
type Fig14Series struct {
	Label   string
	Seconds []float64
	Gbps    []float64
}

// Fig14Result is the Fig. 14 reproduction: end-to-end TCP throughput
// through a NAT during switch failover and recovery, for the baseline
// (no failure), RedPlane under failure, and no-fault-tolerance under
// failure.
type Fig14Result struct {
	Series []Fig14Series
	// FailAt/RecoverAt are the injected event times.
	FailAt, RecoverAt time.Duration
}

// Fig14 runs an iperf-style bulk transfer from an internal sender to an
// external receiver through the NAT. The owning switch fails at FailAt
// and recovers at RecoverAt; fabric detection takes 100 ms and RedPlane's
// lease period (1 s) bounds state handover, so each disruption lasts
// about a second — unless there is no fault tolerance, in which case the
// translation is lost and the connection never resumes.
func Fig14(seed int64, dur time.Duration) Fig14Result {
	if dur == 0 {
		dur = 60 * time.Second
	}
	failAt := dur / 6
	recoverAt := dur * 7 / 12
	out := Fig14Result{FailAt: failAt, RecoverAt: recoverAt}

	out.Series = append(out.Series,
		fig14Run("Baseline (no failure)", seed, dur, 0, 0, true),
		fig14Run("Failure+RedPlane", seed, dur, failAt, recoverAt, true),
		fig14Run("Failure (no FT)", seed, dur, failAt, recoverAt, false),
	)
	return out
}

// fig14Sport picks a sender port whose outbound flow AND whose translated
// reverse flow (acks to the NAT public IP) ECMP to the same switch — the
// affinity a non-fault-tolerant NAT deployment depends on (the paper's
// testbed achieves it with ECMP hashing configured on the partition key).
func fig14Sport() (uint16, uint16) {
	const firstExtPort = 20000 // first allocation of the shared pool
	for sport := uint16(40000); ; sport++ {
		out := redplane.FiveTuple{Src: intClientIP, Dst: extServerIP,
			SrcPort: sport, DstPort: 5001, Proto: 6}
		in := redplane.FiveTuple{Src: extServerIP, Dst: natPublicIP,
			SrcPort: 5001, DstPort: firstExtPort, Proto: 6}
		if out.SymmetricHash()%2 == in.SymmetricHash()%2 {
			return sport, firstExtPort
		}
	}
}

func fig14Run(label string, seed int64, dur, failAt, recoverAt time.Duration, ft bool) Fig14Series {
	nat := newNAT()
	alloc := apps.NewNATAllocator(nat)
	sport, _ := fig14Sport()
	cfg := redplane.DeploymentConfig{
		Seed:   seed,
		NewApp: func(int) redplane.App { return newNAT() },
		Fabric: fig12Fabric, // 1 Gbps fabric keeps the event count tractable
	}
	// Per-switch local pools drawing from one global port sequence:
	// after a failover or a restart the flow gets a fresh translation,
	// which is what breaks connections without fault tolerance.
	locals := map[int]*apps.NATAllocator{}
	var nextBase uint16 = 20000
	if ft {
		cfg.InitState = alloc.Init
	} else {
		cfg.Baseline.NoStore = true
		cfg.Baseline.LocalInit = func(sw int, key redplane.FiveTuple) []uint64 {
			a, ok := locals[sw]
			if !ok {
				a = apps.NewNATAllocatorBase(nat, nextBase)
				nextBase += 1000
				locals[sw] = a
			}
			return a.Init(key)
		}
	}
	d := redplane.NewDeployment(cfg)
	d.RegisterServiceIP(natPublicIP)

	sender := d.AddServer(0, "iperf-c", intClientIP)
	receiver := d.AddClient(0, "iperf-s", extServerIP)

	tcp := tcpsim.DefaultConfig()
	// Cap the window so bursts fit the fabric's finite queues: the BDP
	// here is tiny, so 16 segments saturate the path without tail drops.
	tcp.MaxCwnd = 16
	rcv := tcpsim.NewReceiver(receiver, 5001, tcp.MSS)
	series := metrics.NewSeries(1e9) // 1-second buckets
	rcv.OnDeliver = func(b int) {
		series.Add(float64(d.Now()), float64(b)*8/1e9) // Gb per bucket
	}
	snd := tcpsim.NewSender(d.Sim, sender, receiver.IP, sport, 5001, tcp)
	snd.Start()

	if failAt > 0 {
		// Identify the owning switch for the iperf flow; fail it.
		key := redplane.FiveTuple{Src: sender.IP, Dst: receiver.IP,
			SrcPort: sport, DstPort: 5001, Proto: 6}
		owner := d.SwitchFor(key)
		d.ScheduleFailure(redplane.FailurePlan{
			Agg: owner.ID(), FailAt: failAt, DetectDelay: 100 * time.Millisecond,
			RecoverAt: recoverAt,
		})
		if !ft {
			// Fail-stop loses the switch's local pool state too.
			d.Sim.After(failAt, func() { delete(locals, owner.ID()) })
		}
	}
	d.RunFor(dur)
	ts, vs := series.Points()
	return Fig14Series{Label: label, Seconds: ts, Gbps: vs}
}

// String renders a compact throughput timeline.
func (s Fig14Series) String() string {
	head := fmt.Sprintf("%-22s", s.Label)
	for i, v := range s.Gbps {
		if i%5 == 0 {
			head += fmt.Sprintf(" %4.2f", v)
		}
	}
	return head
}

// Mean returns the series' average goodput over [from, to) seconds.
func (s Fig14Series) Mean(from, to float64) float64 {
	var sum float64
	n := 0
	for i, t := range s.Seconds {
		if t >= from && t < to {
			sum += s.Gbps[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}
