package experiments

import (
	"fmt"

	"redplane/internal/packet"
	"redplane/internal/wire"
)

// AppTrafficModel is the closed-form per-application traffic description
// behind §7.2's at-scale analysis ("we also analyze the bandwidth
// overhead at scale ... using our analytical model-based simulation"):
// every quantity is per data packet or per flow, so overhead percentages
// follow without event simulation and are independent of absolute rate.
type AppTrafficModel struct {
	Name string

	// DataBytes is the mean wire size of a data packet.
	DataBytes float64
	// PacketsPerFlow is the mean flow length in packets.
	PacketsPerFlow float64
	// WritesPerPacket is the fraction of packets that update replicated
	// state (1 for Sync-Counter, 1/18 for EPC signaling, 0 for pure
	// read-centric apps whose only write is flow creation).
	WritesPerPacket float64
	// PiggybackWrites marks apps whose write requests carry the output
	// packet (synchronous mode).
	PiggybackWrites bool
	// BufferedReadsPerPacket is the fraction of packets buffered through
	// the network behind in-flight writes (rate- and RTT-dependent; the
	// evaluation's EPC measures a few percent).
	BufferedReadsPerPacket float64
	// SnapshotHz and SnapshotSlots describe bounded-inconsistency
	// replication (zero for synchronous apps); DataPacketsPerSecond
	// scales snapshot traffic against data traffic.
	SnapshotHz           float64
	SnapshotSlots        int
	DataPacketsPerSecond float64
	// RenewsPerFlow counts explicit lease renewals in a flow's lifetime.
	RenewsPerFlow float64
	// SetupBurstPackets counts the packets that arrive while the flow's
	// lease acquisition (and any control-plane insertion) is in flight:
	// each is buffered through the network as its own piggybacked lease
	// request. Depends on the per-flow packet rate versus the setup
	// latency (~50 at the Fig. 10 replay rate for table-installed apps,
	// ~1 for handshake-paced flows).
	SetupBurstPackets float64
}

// Protocol message sizes derived from the wire format (bytes on the
// wire, including encapsulation).
func protoSizes() (plain, withVals float64, ackPlain float64) {
	base := (&wire.Message{Type: wire.MsgLeaseRenew}).WireLen()
	vals := (&wire.Message{Type: wire.MsgRepl, Vals: []uint64{1}}).WireLen()
	return float64(base), float64(vals), float64(base)
}

// OverheadPercent computes the share of total bandwidth consumed by
// RedPlane messages for n RedPlane switches sharing the workload. The
// per-switch split does not change per-flow costs (a flow's state lives
// on one switch at a time), so overhead is scale-invariant — the paper's
// finding that the at-scale analysis "is consistent with Fig. 10".
func (m AppTrafficModel) OverheadPercent(switches int) float64 {
	if switches < 1 {
		switches = 1
	}
	plain, withVals, ack := protoSizes()
	piggy := m.DataBytes - float64(packet.EthernetLen)

	// Per-flow setup: every packet arriving before the grant is its own
	// piggybacked lease request with a piggybacked grant, plus renewals.
	acqs := 1 + m.SetupBurstPackets
	perFlow := acqs*((plain+piggy)+(withVals+piggy)) + m.RenewsPerFlow*(plain+ack)

	// Per-packet synchronous writes.
	write := withVals + ack
	if m.PiggybackWrites {
		write += 2 * piggy
	}
	perPkt := m.WritesPerPacket*write + m.BufferedReadsPerPacket*2*(plain+piggy)

	// Asynchronous snapshots, normalized per data packet.
	var snapPerPkt float64
	if m.SnapshotHz > 0 && m.DataPacketsPerSecond > 0 {
		msgs := float64((m.SnapshotSlots + 15) / 16) // 16 slots per message
		bytesPerSec := m.SnapshotHz * msgs *
			((withVals + 15*8) + ack) // batch payload + ack
		snapPerPkt = bytesPerSec / m.DataPacketsPerSecond
	}

	protoPerPkt := perFlow/m.PacketsPerFlow + perPkt + snapPerPkt
	return 100 * protoPerPkt / (m.DataBytes + protoPerPkt)
}

// String renders the model's prediction for 2 and 16 switches.
func (m AppTrafficModel) String() string {
	return fmt.Sprintf("%-16s overhead=%5.1f%% (2 sw) %5.1f%% (16 sw)",
		m.Name, m.OverheadPercent(2), m.OverheadPercent(16))
}

// PaperModels returns the six evaluated applications parameterized as in
// the Fig. 10 experiment (64-byte packets, long-lived flows).
func PaperModels(packetsPerFlow float64) []AppTrafficModel {
	if packetsPerFlow == 0 {
		packetsPerFlow = 2500
	}
	const pkt64 = 64
	// Setup bursts at the Fig. 10 replay rate (2 µs inter-packet):
	// control-plane installed apps hold acquisition open ~100 µs, register
	// apps only the ~15 µs store round trip.
	const tableBurst, registerBurst = 50, 7
	return []AppTrafficModel{
		{Name: "NAT", DataBytes: pkt64, PacketsPerFlow: packetsPerFlow,
			RenewsPerFlow: 1, SetupBurstPackets: tableBurst},
		{Name: "Firewall", DataBytes: pkt64, PacketsPerFlow: packetsPerFlow, RenewsPerFlow: 1,
			WritesPerPacket: 1 / packetsPerFlow, PiggybackWrites: true,
			SetupBurstPackets: registerBurst},
		{Name: "Load balancer", DataBytes: pkt64, PacketsPerFlow: packetsPerFlow,
			RenewsPerFlow: 1, SetupBurstPackets: tableBurst},
		{Name: "EPC-SGW", DataBytes: pkt64, PacketsPerFlow: packetsPerFlow,
			WritesPerPacket: 1.0 / 18, PiggybackWrites: true,
			BufferedReadsPerPacket: 0.03, RenewsPerFlow: 1,
			SetupBurstPackets: registerBurst},
		// HH snapshots at the scaled period (100 ms) against the scaled
		// 0.5 Mpps data rate, matching the Fig. 10 simulation setup; in
		// bounded-inconsistency mode there are no leases at all.
		{Name: "HH-detector", DataBytes: pkt64, PacketsPerFlow: packetsPerFlow,
			SnapshotHz: 10, SnapshotSlots: 192, DataPacketsPerSecond: 500_000},
		{Name: "Sync-Counter", DataBytes: pkt64, PacketsPerFlow: packetsPerFlow,
			WritesPerPacket: 1, PiggybackWrites: true, SetupBurstPackets: registerBurst},
	}
}

// AtScaleResult compares the analytical model across switch counts.
type AtScaleResult struct {
	Rows []AppTrafficModel
}

// Fig10AtScale is the §7.2 at-scale analysis: overhead percentages for
// larger topologies, computed analytically.
func Fig10AtScale(packetsPerFlow float64) AtScaleResult {
	return AtScaleResult{Rows: PaperModels(packetsPerFlow)}
}
