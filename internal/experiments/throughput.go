package experiments

import (
	"fmt"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/metrics"
	"redplane/internal/netsim"
	"redplane/internal/store"
	"redplane/internal/topo"
)

// ThroughputWindows is the egress batch-window sweep the sustained-
// throughput experiment runs: batching off, the chaos-campaign default,
// and a deep-coalescing window an order of magnitude wider.
var ThroughputWindows = []time.Duration{0, 10 * time.Microsecond, 100 * time.Microsecond}

// ThroughputPoint is one batch-window setting of the open-loop sweep.
type ThroughputPoint struct {
	// Window is the switch egress coalescing window (0 = batching off).
	Window time.Duration
	// GoodputMpps is the delivered packet rate at the sink.
	GoodputMpps float64
	// P99Us is the 99th-percentile client→sink delivery latency in
	// microseconds (the write path holds each packet until its
	// replication is acknowledged, so this includes the store RTT).
	P99Us float64
	// Batches and BatchedMsgs count coalesced egress datagrams and the
	// messages they carried.
	Batches, BatchedMsgs uint64
	// StoreSheds counts messages shed by the store's bounded ingress
	// queue during the run.
	StoreSheds uint64
	// WALBytes is the durable log volume (zero for volatile runs).
	WALBytes uint64
}

// String renders the point as one sweep row.
func (p ThroughputPoint) String() string {
	w := "off"
	if p.Window > 0 {
		w = p.Window.String()
	}
	return fmt.Sprintf("window=%-5s goodput=%.3f Mpps p99=%.1fµs batches=%d batched_msgs=%d store_sheds=%d",
		w, p.GoodputMpps, p.P99Us, p.Batches, p.BatchedMsgs, p.StoreSheds)
}

// ThroughputResult is the sustained-throughput sweep: the same open-loop
// write-heavy offered load measured under each batch window.
type ThroughputResult struct {
	Points []ThroughputPoint
	// OfferedMpps is the aggregate open-loop offered rate.
	OfferedMpps float64
}

// throughputService is the store service time for the sweep: 1 µs per
// message caps the unbatched write path at 1 M replications/s, well
// below the ~1.95 Mpps fabric bottleneck, so the store pipeline — the
// thing batching accelerates — is the explicit bottleneck.
const throughputService = time.Microsecond

// ThroughputDurabilityPoint is one durability setting of the comparison.
type ThroughputDurabilityPoint struct {
	// Durable is whether the store ran with the WAL + group-commit
	// pipeline on.
	Durable bool
	// GoodputMpps and P99Us mirror ThroughputPoint.
	GoodputMpps float64
	P99Us       float64
	// WALBytes is the durable log volume the run produced (zero when
	// volatile).
	WALBytes uint64
}

// String renders the point as one comparison row.
func (p ThroughputDurabilityPoint) String() string {
	mode := "volatile"
	if p.Durable {
		mode = "durable"
	}
	return fmt.Sprintf("store=%-8s goodput=%.3f Mpps p99=%.1fµs wal_bytes=%d",
		mode, p.GoodputMpps, p.P99Us, p.WALBytes)
}

// ThroughputDurabilityResult is the durability cost experiment: the same
// open-loop write-heavy load, batched at the chaos-default egress
// window, with the store volatile vs durable.
type ThroughputDurabilityResult struct {
	Off, On     ThroughputDurabilityPoint
	OfferedMpps float64
}

// ThroughputDurability measures what the durable store costs in
// sustained goodput and tail latency. The WAL append itself is on the
// shard's critical path, but the fsync is a group commit: all mutations
// inside one FsyncDelay window share a single sync, and only the
// release of their outputs (chain forwards, acks) waits on it — so the
// expected cost is a latency shift of roughly the fsync delay and a
// goodput dent from the deeper store pipeline, not a per-write sync
// collapse.
func ThroughputDurability(seed int64, window time.Duration) ThroughputDurabilityResult {
	if window == 0 {
		window = 20 * time.Millisecond
	}
	const egress = 10 * time.Microsecond // chaos-default batching for both sides
	var out ThroughputDurabilityResult
	off, offered := throughputRun(seed, egress, window, false)
	on, _ := throughputRun(seed, egress, window, true)
	out.Off = ThroughputDurabilityPoint{GoodputMpps: off.GoodputMpps, P99Us: off.P99Us}
	out.On = ThroughputDurabilityPoint{Durable: true, GoodputMpps: on.GoodputMpps,
		P99Us: on.P99Us, WALBytes: on.WALBytes}
	out.OfferedMpps = offered
	return out
}

// Throughput measures sustained goodput of the synchronous write path
// (Sync-Counter: every packet is a store write) under open-loop overload,
// sweeping the switch egress batch window. With batching off the store
// serves one message per service interval; coalesced batches amortize the
// per-message cost (half the service time per extra message) and the
// per-datagram encapsulation, so wider windows push the saturation point
// up — at the price of up to one window of added delivery latency.
func Throughput(seed int64, window time.Duration) ThroughputResult {
	if window == 0 {
		window = 20 * time.Millisecond
	}
	var out ThroughputResult
	for _, w := range ThroughputWindows {
		pt, offered := throughputRun(seed, w, window, false)
		out.Points = append(out.Points, pt)
		out.OfferedMpps = offered
	}
	return out
}

// throughputRun drives the open-loop load through one deployment with the
// given egress window and returns the measured point plus the offered
// rate in Mpps.
func throughputRun(seed int64, egress, window time.Duration, durable bool) (ThroughputPoint, float64) {
	proto := redplane.DefaultProtocolConfig()
	proto.FlushWindow = egress
	cfg := redplane.DeploymentConfig{
		Seed:            seed,
		Fabric:          fig12Fabric,
		StoreService:    throughputService,
		Protocol:        proto,
		NewApp:          func(int) redplane.App { return apps.SyncCounter{} },
		StoreDurability: store.DurabilityConfig{Enabled: durable},
	}
	d := redplane.NewDeployment(cfg)

	sink := d.AddClient(0, "sink", extServerIP)
	delivered := 0
	counting := false
	lat := &metrics.Latency{}
	sink.Handler = func(f *netsim.Frame) {
		if !counting || f.Pkt == nil {
			return
		}
		delivered++
		if f.Pkt.SentAt > 0 {
			lat.Add(float64(int64(d.Sim.Now()) - f.Pkt.SentAt))
		}
	}

	senders := []*topo.Host{
		d.AddServer(0, "snd0", packet4(10, 0, 0, 51)),
		d.AddServer(1, "snd1", packet4(10, 1, 0, 51)),
		d.AddServer(0, "snd2", packet4(10, 0, 0, 52)),
	}

	// Warm up every flow's lease before measuring, as fig12 does.
	for sport := 0; sport < 64; sport++ {
		for _, snd := range senders {
			snd.SendPacket(newTinyPacket(snd.IP, extServerIP, uint16(1000+sport)))
		}
	}
	d.RunFor(25 * time.Millisecond)
	counting = true
	start := d.Now()
	end := start + redplane.Time(window.Nanoseconds())

	// Three senders at one packet per 2.5 µs each: 1.2 Mpps aggregate
	// into a write path that saturates at ~1 Mpps unbatched — enough
	// overload that unbatched goodput reads the pipeline's capacity,
	// while coalesced runs have headroom to absorb the offered rate.
	const gapNs = 2500
	for si, snd := range senders {
		snd := snd
		n := 0
		d.Sim.Every(start+netsim.Time(si*100+1), gapNs, func() bool {
			n++
			p := newTinyPacket(snd.IP, extServerIP, uint16(1000+(n%64)))
			p.SentAt = int64(d.Sim.Now())
			snd.SendPacket(p)
			return d.Sim.Now() < end
		})
	}
	d.RunFor(time.Duration(end) + 5*time.Millisecond)

	snap := d.Snapshot()
	pt := ThroughputPoint{
		Window:      egress,
		GoodputMpps: float64(delivered) / window.Seconds() / 1e6,
		P99Us:       lat.Percentile(99) / 1e3,
		Batches:     snap.Totals.EgressBatches,
		BatchedMsgs: snap.Totals.EgressMsgs,
		StoreSheds:  snap.Totals.StoreShedMsgs,
		WALBytes:    snap.Totals.StoreWALBytes,
	}
	offered := float64(len(senders)) * 1e3 / gapNs // Mpps
	return pt, offered
}
