package experiments

import "testing"

func TestAblationSequencing(t *testing.T) {
	res := AblationSequencing(1)
	if res.With != 0 {
		t.Errorf("with sequencing, %.1f regressions per 1000 applied", res.With)
	}
	if res.Without < 10 {
		t.Errorf("sequencing ablation shows no effect: without=%.1f", res.Without)
	}
}

func TestAblationRetransmission(t *testing.T) {
	res := AblationRetransmission(2)
	if res.With > 1 {
		t.Errorf("with retransmission, %.1f%% updates lost", res.With)
	}
	if res.Without < 2 {
		t.Errorf("without retransmission at 5%% loss, only %.1f%% lost", res.Without)
	}
}

func TestAblationChainLength(t *testing.T) {
	rows := AblationChainLength(3)
	one, two := rows[0].Without, rows[0].With
	three := rows[1].With
	if !(one < two && two < three) {
		t.Errorf("chain latency not monotone: %v %v %v", one, two, three)
	}
}

func TestAblationSnapshotPeriod(t *testing.T) {
	rows := AblationSnapshotPeriod(4)
	for _, r := range rows {
		if r.With < 0 || r.With > 100 {
			t.Errorf("%s out of range: %v", r.Name, r.With)
		}
	}
	// Exposure must grow with the snapshot period (ε bounds the loss).
	if rows[1].With <= rows[0].With {
		t.Errorf("exposure not monotone in ε: 1ms=%.1f%% 10ms=%.1f%%",
			rows[0].With, rows[1].With)
	}
}

func TestAblationMirrorBuffer(t *testing.T) {
	res := AblationMirrorBuffer(5)
	if res.Without <= res.With {
		t.Errorf("small buffer overflowed less (%v) than large (%v)", res.Without, res.With)
	}
	if res.String() == "" {
		t.Error("empty row")
	}
}
