package redplane

import (
	"fmt"
	"time"

	"redplane/internal/core"
	"redplane/internal/durable"
	"redplane/internal/failure"
	"redplane/internal/flowspace"
	"redplane/internal/member"
	"redplane/internal/netem"
	"redplane/internal/netsim"
	"redplane/internal/obs"
	"redplane/internal/packet"
	"redplane/internal/store"
	"redplane/internal/topo"
)

// BaselineConfig selects non-fault-tolerant baseline operation: the
// paper's comparison points, where state lives only on the switch.
type BaselineConfig struct {
	// NoStore disables the state store entirely: switches run the
	// application without fault tolerance.
	NoStore bool

	// LocalInit seeds per-flow state in NoStore mode; the switch ID
	// allows per-switch pools (baseline state is switch-local).
	LocalInit func(switchID int, key FiveTuple) []uint64

	// LocalInitExtraDelay models an external controller on baseline
	// flow setup.
	LocalInitExtraDelay time.Duration
}

// AblationConfig degrades the protocol for ablation experiments only;
// production deployments leave it zero.
type AblationConfig struct {
	// StoreIgnoreSeq disables the store's sequence serialization — the
	// Fig. 6a ablation.
	StoreIgnoreSeq bool

	// DisableRetransmit turns off the mirroring-based retransmission of
	// replication requests (§5.2).
	DisableRetransmit bool

	// EmulatedRequestLoss drops outgoing protocol requests at the
	// switch with this probability (the §7.4 methodology).
	EmulatedRequestLoss float64

	// StoreNoRevoke disables lease revocation on failover at the store —
	// the intentionally-broken protocol knob the chaos harness must
	// catch (see store.Config.UnsafeNoRevoke).
	StoreNoRevoke bool
}

// DefaultTraceEvents is the event-ring capacity ObsConfig.TraceEvents
// selects when callers just want tracing on.
const DefaultTraceEvents = 65536

// ObsConfig tunes the deployment's observability: counters are always
// on (they are single atomic adds); event tracing and gauge sampling
// are opt-in because they cost memory proportional to run length.
type ObsConfig struct {
	// TraceEvents, when positive, enables the protocol event tracer
	// with a bounded ring of that many events (DefaultTraceEvents is a
	// reasonable choice). Zero disables tracing.
	TraceEvents int

	// SamplePeriod, when positive, samples every registered gauge into
	// a time series at this virtual-time period.
	SamplePeriod time.Duration
}

// FlowSpaceConfig enables consistent-hash flow-space routing: instead
// of the static hash-mod-shards mapping, five-tuples route to chains
// through an epoch-numbered ring (internal/flowspace), and the
// membership coordinator gains migration duties — fencing a moving key
// range, transferring its durable state between chains, and flipping
// the routing epoch with no acked write lost (see internal/member's
// migration doc).
type FlowSpaceConfig struct {
	// Enabled turns flow-space routing on. It implies StoreMembership:
	// the coordinator is the only component allowed to mutate the ring.
	Enabled bool

	// VNodes is the virtual ring points per chain (zero means
	// flowspace.DefaultVNodes). More points spread key mass more evenly
	// at the cost of a larger table.
	VNodes int

	// Chains is how many chains initially own ring arcs (zero means all
	// StoreShards). With Chains < StoreShards the spare shards start
	// empty and take flow-space only when a migration moves arcs onto
	// them — the scale-out experiment's starting shape.
	Chains int

	// MigrationDrain, RebalanceEvery, and RebalanceTheta forward to
	// member.Config (zero means that field's default; RebalanceEvery
	// zero leaves the skew-aware rebalancer off).
	MigrationDrain time.Duration
	RebalanceEvery time.Duration
	RebalanceTheta float64
}

// DeploymentConfig describes a RedPlane deployment on the simulated
// testbed: how many programmable switches fill the aggregation layer,
// the application each runs, the consistency mode, and the state store's
// shape.
type DeploymentConfig struct {
	// Seed drives the deterministic simulation.
	Seed int64

	// NewApp builds the application instance for switch i. Required.
	NewApp func(i int) App

	// Mode is the consistency mode (default Linearizable).
	Mode Mode

	// Switches is the number of programmable aggregation switches
	// (default 2, as on the paper's testbed).
	Switches int

	// Replication groups the replication knobs — engine name (EngineChain,
	// EngineQuorum), group size, store queue bound, switch flush window,
	// group-commit fsync delay — in one sub-struct, mirroring Baseline and
	// Ablation. Zero fields fall back to the flat legacy knobs
	// (StoreReplicas, StoreQueueMaxMsgs, Protocol.FlushWindow,
	// StoreDurability.FsyncDelay) for one release; a set field wins over
	// its alias.
	Replication ReplicationConfig

	// StoreShards and StoreReplicas shape the state store (defaults 1
	// shard, 3-way replication, as in the prototype).
	//
	// Deprecated: set Replication.Replicas instead of StoreReplicas; this
	// alias is honored for one release.
	StoreShards, StoreReplicas int

	// StoreService is the per-request service time at a store server
	// (default 2 µs, approximating the kernel-bypass server).
	StoreService time.Duration

	// StoreQueueMaxMsgs bounds each store server's service backlog by
	// message count (zero means store.DefaultQueueMaxMsgs); overload
	// beyond it is shed and counted rather than queued without bound.
	//
	// Deprecated: set Replication.QueueMaxMsgs; this alias is honored for
	// one release.
	StoreQueueMaxMsgs int

	// StoreMaxWaiting caps each flow's buffered-lease-request queue at
	// the store (zero means store.DefaultMaxWaiting).
	StoreMaxWaiting int

	// StoreDurability enables the store's persistence layer: each server
	// gets an in-memory durable backend (a "disk" that survives cold
	// restarts), WAL-logs every mutation, and holds chain forwards and
	// acks behind a group-commit fsync elapsing in virtual time. See
	// store.DurabilityConfig.
	StoreDurability store.DurabilityConfig

	// StoreMembership enables the group membership coordinator: dead
	// replicas are spliced out of their replication group (preserving
	// survivor order), stale views are fenced, and recovered replicas
	// resync and rejoin. Without it the group topology is fixed at
	// construction.
	StoreMembership bool

	// StoreMember tunes the coordinator (zero values mean defaults).
	StoreMember member.Config

	// FlowSpace enables consistent-hash flow-space routing with live
	// migration (see FlowSpaceConfig).
	FlowSpace FlowSpaceConfig

	// InitState is the store-side state initializer for new flows (the
	// place shared pools live; see internal/apps allocators).
	InitState func(key FiveTuple) []uint64

	// SnapshotSlots is the store's expected snapshot image size for
	// bounded-inconsistency apps.
	SnapshotSlots int

	// Protocol tunes the replication protocol; zero value means
	// DefaultProtocolConfig.
	Protocol ProtocolConfig

	// Fabric overrides the testbed link configuration (zero value means
	// the default 100 Gbps / 800 ns fabric).
	Fabric netsim.LinkConfig

	// RecordHistory enables input/output event recording for the
	// linearizability checker.
	RecordHistory bool

	// RecordJournal enables the acknowledged-write journal shared by all
	// switches, exposed as Deployment.Journal (the chaos harness's
	// no-lost-write checker input).
	RecordJournal bool

	// Baseline selects non-fault-tolerant baseline operation.
	Baseline BaselineConfig

	// Ablation degrades the protocol for ablation experiments.
	Ablation AblationConfig

	// Obs tunes tracing and time-series sampling.
	Obs ObsConfig

	// NetEm enables the network-condition emulation subsystem: per-node
	// clocks with bounded drift/offset, WAN datacenter topologies, and
	// (at fault time, via SetStoreGray/SetStoreOneWay) gray failures and
	// asymmetric partitions. The zero value keeps the deployment
	// byte-identical to one built before the subsystem existed.
	NetEm netem.Config
}

// Deployment is a running RedPlane testbed: simulator, topology,
// switches, and state store, plus helpers to attach traffic endpoints
// and inject failures.
type Deployment struct {
	Sim     *netsim.Sim
	Testbed *topo.Testbed
	Cluster *store.Cluster
	Hist    *History
	Journal *WriteJournal

	// Coordinator is the chain membership coordinator (nil unless
	// StoreMembership is set).
	Coordinator *member.Coordinator

	// FlowTable is the flow-space routing ring (nil unless
	// FlowSpace.Enabled). All switches and stores read this one table —
	// the idealized instantly-consistent routing rollout; the epoch
	// number is what a real control plane would distribute.
	FlowTable *flowspace.Table

	switches []*core.Switch
	swIPs    []packet.Addr
	reg      *obs.Registry

	// em is the network-condition manager (nil unless NetEm enabled);
	// storeUplinks holds each store server's uplink port in Cluster.All
	// order so conditions can be attached per direction.
	em           *netem.Manager
	emCfg        netem.Config
	storeUplinks []*netsim.Port

	// storeBEs[shard][replica] are the store servers' durable backends
	// (nil unless StoreDurability.Enabled).
	storeBEs [][]*durable.MemBackend
}

// deploymentObserver is the package-level hook installed by
// SetDeploymentObserver.
var deploymentObserver struct {
	obs ObsConfig
	fn  func(*Deployment)
}

// SetDeploymentObserver installs a process-wide observability hook for
// tooling (the bench CLI's -trace/-stats flags): every subsequently
// built Deployment has forced merged into its Obs config (keeping the
// stronger of the two settings) and is handed to fn after construction.
// Pass a zero ObsConfig and nil fn to uninstall. Not safe against
// concurrent NewDeployment calls.
func SetDeploymentObserver(forced ObsConfig, fn func(*Deployment)) {
	deploymentObserver.obs = forced
	deploymentObserver.fn = fn
}

// NewDeployment builds and wires the testbed.
func NewDeployment(cfg DeploymentConfig) *Deployment {
	if cfg.NewApp == nil {
		panic("redplane: DeploymentConfig.NewApp is required")
	}
	if o := deploymentObserver.obs; o.TraceEvents > cfg.Obs.TraceEvents {
		cfg.Obs.TraceEvents = o.TraceEvents
	}
	if o := deploymentObserver.obs; o.SamplePeriod > 0 &&
		(cfg.Obs.SamplePeriod == 0 || o.SamplePeriod < cfg.Obs.SamplePeriod) {
		cfg.Obs.SamplePeriod = o.SamplePeriod
	}
	if cfg.Switches == 0 {
		cfg.Switches = 2
	}
	if cfg.StoreShards == 0 {
		cfg.StoreShards = 1
	}
	// One release of aliases: the grouped Replication knobs win over the
	// flat legacy fields when set; legacy fields keep working otherwise.
	if err := cfg.Replication.Validate(); err != nil {
		panic("redplane: " + err.Error())
	}
	if cfg.Replication.Replicas != 0 {
		cfg.StoreReplicas = cfg.Replication.Replicas
	}
	if cfg.Replication.QueueMaxMsgs != 0 {
		cfg.StoreQueueMaxMsgs = cfg.Replication.QueueMaxMsgs
	}
	if cfg.Replication.FsyncDelay != 0 {
		cfg.StoreDurability.FsyncDelay = cfg.Replication.FsyncDelay
	}
	if cfg.StoreReplicas == 0 {
		cfg.StoreReplicas = 3
	}
	if cfg.StoreService == 0 {
		cfg.StoreService = 2 * time.Microsecond
	}
	if cfg.Protocol.LeasePeriod == 0 {
		cfg.Protocol = DefaultProtocolConfig()
	}
	if cfg.Replication.FlushWindow != 0 {
		cfg.Protocol.FlushWindow = cfg.Replication.FlushWindow
	}
	if cfg.Fabric.Delay == 0 && cfg.Fabric.Bandwidth == 0 {
		cfg.Fabric = netsim.LinkConfig{Delay: 800 * time.Nanosecond, Bandwidth: 100e9}
	}

	sim := netsim.New(cfg.Seed)
	d := &Deployment{Sim: sim, reg: obs.NewRegistry()}
	if cfg.Obs.TraceEvents > 0 {
		d.reg.SetTracer(obs.NewTracer(cfg.Obs.TraceEvents))
	}
	// The registry must be installed before topology construction: links
	// and servers cache their counters when they are built.
	sim.SetObserver(d.reg)
	if cfg.Obs.SamplePeriod > 0 {
		period := netsim.Duration(cfg.Obs.SamplePeriod)
		sim.Every(period, period, func() bool {
			d.reg.SampleAll(int64(sim.Now()))
			return true
		})
	}
	if cfg.RecordHistory {
		d.Hist = &History{}
		cfg.Protocol.History = d.Hist
	}
	if cfg.RecordJournal {
		d.Journal = &WriteJournal{}
		cfg.Protocol.Journal = d.Journal
	}
	cfg.Protocol.LocalInit = cfg.Baseline.LocalInit
	cfg.Protocol.LocalInitExtraDelay = cfg.Baseline.LocalInitExtraDelay
	if cfg.Ablation.DisableRetransmit {
		cfg.Protocol.DisableRetransmit = true
	}
	if cfg.Ablation.EmulatedRequestLoss > 0 {
		cfg.Protocol.EmulatedRequestLoss = cfg.Ablation.EmulatedRequestLoss
	}

	var locator core.StoreLocator
	if !cfg.Baseline.NoStore {
		opts := []store.Option{store.WithEngine(cfg.Replication.Engine)}
		if cfg.StoreQueueMaxMsgs > 0 {
			opts = append(opts, store.WithQueueMaxMsgs(cfg.StoreQueueMaxMsgs))
		}
		if cfg.StoreDurability.Enabled {
			d.storeBEs = make([][]*durable.MemBackend, cfg.StoreShards)
			for sh := range d.storeBEs {
				d.storeBEs[sh] = make([]*durable.MemBackend, cfg.StoreReplicas)
			}
			opts = append(opts, store.WithDurability(cfg.StoreDurability,
				func(shard, replica int) durable.Backend {
					be := durable.NewMemBackend()
					d.storeBEs[shard][replica] = be
					return be
				}))
		}
		d.Cluster = store.NewCluster(sim, cfg.StoreShards, cfg.StoreReplicas,
			store.Config{
				LeasePeriod:    cfg.Protocol.LeasePeriod,
				InitState:      cfg.InitState,
				SnapshotSlots:  cfg.SnapshotSlots,
				MaxWaiting:     cfg.StoreMaxWaiting,
				IgnoreSeq:      cfg.Ablation.StoreIgnoreSeq,
				UnsafeNoRevoke: cfg.Ablation.StoreNoRevoke,
			},
			cfg.StoreService,
			func(shard, replica int) packet.Addr {
				return packet.MakeAddr(10, 100, byte(shard+1), byte(replica+1))
			},
			opts...)
		if cfg.FlowSpace.Enabled {
			chains := cfg.FlowSpace.Chains
			if chains <= 0 || chains > cfg.StoreShards {
				chains = cfg.StoreShards
			}
			d.FlowTable = flowspace.New(chains, cfg.FlowSpace.VNodes)
			d.Cluster.UseTable(d.FlowTable)
			cfg.StoreMembership = true
			cfg.StoreMember.Table = d.FlowTable
			if cfg.FlowSpace.MigrationDrain != 0 {
				cfg.StoreMember.MigrationDrain = cfg.FlowSpace.MigrationDrain
			}
			if cfg.FlowSpace.RebalanceEvery != 0 {
				cfg.StoreMember.RebalanceEvery = cfg.FlowSpace.RebalanceEvery
			}
			if cfg.FlowSpace.RebalanceTheta != 0 {
				cfg.StoreMember.RebalanceTheta = cfg.FlowSpace.RebalanceTheta
			}
		}
		if cfg.StoreMembership {
			d.Coordinator = member.New(sim, d.Cluster, cfg.StoreMember)
			d.Coordinator.Start()
		}
		locator = d.Cluster
	}

	var aggs []topo.RoutedNode
	for i := 0; i < cfg.Switches; i++ {
		ip := packet.MakeAddr(10, 254, 0, byte(i+1))
		d.swIPs = append(d.swIPs, ip)
		sw := core.NewSwitch(sim, i, fmt.Sprintf("redplane-sw%d", i), ip,
			cfg.NewApp(i), cfg.Mode, locator, cfg.Protocol)
		d.switches = append(d.switches, sw)
		aggs = append(aggs, sw)
	}

	d.Testbed = topo.NewTestbed(sim, topo.TestbedConfig{Fabric: cfg.Fabric, Cores: 2, ToRs: 2}, aggs)
	for i, ip := range d.swIPs {
		d.Testbed.RegisterAggIP(i, ip)
	}

	if d.Cluster != nil {
		// Store servers keep their full-rate NICs even when the fabric
		// is scaled down for simulation tractability: the paper's store
		// uses 100 Gbps kernel-bypass NICs, so its links are never the
		// scaled bottleneck.
		storeLink := cfg.Fabric
		if storeLink.Bandwidth > 0 && storeLink.Bandwidth < 100e9 {
			storeLink.Bandwidth *= 4
		}
		for si, srv := range d.Cluster.All() {
			rack := (si % cfg.StoreReplicas) % 2
			p := d.Testbed.AddRackNodeLink(rack, srv, srv.IP, storeLink)
			srv.SetPort(p)
			srv.SwitchAddr = d.SwitchIP
			d.storeUplinks = append(d.storeUplinks, p)
		}
	}
	if cfg.NetEm.Enabled() {
		d.installNetEm(cfg)
	}
	if deploymentObserver.fn != nil {
		deploymentObserver.fn(d)
	}
	return d
}

// installNetEm builds the network-condition manager and applies the
// construction-time conditions: per-node clocks (switches first, then
// store servers in Cluster.All order — the draw order is part of the
// deterministic contract) and WAN inter-DC base delays on the uplinks
// of store replicas placed outside the hub datacenter.
func (d *Deployment) installNetEm(cfg DeploymentConfig) {
	seed := cfg.NetEm.Seed
	if seed == 0 {
		cfg.NetEm.Seed = cfg.Seed
	}
	d.em = netem.NewManager(cfg.NetEm, d.reg)
	d.emCfg = cfg.NetEm
	for _, sw := range d.switches {
		if c := d.em.NewClock(); c != nil {
			sw.SetClock(c)
		}
	}
	if d.Cluster == nil {
		return
	}
	wan := cfg.NetEm.Topology
	for si, srv := range d.Cluster.All() {
		if c := d.em.NewClock(); c != nil {
			srv.SetClock(c)
		}
		replica := si % cfg.StoreReplicas
		if delay := wan.NodeDelay(wan.DCOf(replica)); delay > 0 {
			out, in := d.storeUplinkPorts(si)
			d.em.Cond(out).SetBaseDelay(delay)
			d.em.Cond(in).SetBaseDelay(delay)
		}
	}
}

// storeUplinkPorts returns both directions of the store server uplink at
// Cluster.All index si: out conditions frames the server sends, in
// conditions frames sent toward it.
func (d *Deployment) storeUplinkPorts(si int) (out, in *netsim.Port) {
	p := d.storeUplinks[si]
	a, b := p.Link().Ports()
	if a == p {
		return a, b
	}
	return b, a
}

// NetEm returns the deployment's network-condition manager, nil unless
// DeploymentConfig.NetEm enabled the subsystem.
func (d *Deployment) NetEm() *netem.Manager { return d.em }

// SetStoreGray installs (or clears, with nil) a gray-failure shape on
// both directions of the store server's uplink: the replica stays alive
// — liveness probes still pass — but every frame to or from it sees the
// shape's delay, burst loss, and throttled bandwidth.
func (d *Deployment) SetStoreGray(shard, replica int, shape *netem.GrayShape) {
	if d.em == nil || d.Cluster == nil {
		return
	}
	out, in := d.storeUplinkPorts(shard*d.Cluster.Replicas() + replica)
	d.em.Cond(out).SetGray(shape)
	d.em.Cond(in).SetGray(shape)
}

// SetStoreOneWay opens (or heals, with cut=false) a one-way partition
// on the store server's uplink. inbound=true cuts traffic toward the
// server while its own sends still flow — the asymmetric half-failure
// that makes a replica look alive to some observers and dead to others.
func (d *Deployment) SetStoreOneWay(shard, replica int, inbound, cut bool) {
	if d.em == nil || d.Cluster == nil {
		return
	}
	out, in := d.storeUplinkPorts(shard*d.Cluster.Replicas() + replica)
	if inbound {
		d.em.Cond(in).SetCut(cut)
	} else {
		d.em.Cond(out).SetCut(cut)
	}
}

// Switch returns programmable switch i.
func (d *Deployment) Switch(i int) *core.Switch { return d.switches[i] }

// StoreBackend returns the durable backend behind the store server at
// (shard, replica), or nil when durability is off. The chaos harness
// dumps these alongside violation repros.
func (d *Deployment) StoreBackend(shard, replica int) *durable.MemBackend {
	if d.storeBEs == nil {
		return nil
	}
	return d.storeBEs[shard][replica]
}

// Switches returns the switch count.
func (d *Deployment) Switches() int { return len(d.switches) }

// SwitchIP returns switch i's protocol address.
func (d *Deployment) SwitchIP(i int) Addr { return d.swIPs[i] }

// SwitchFor returns the switch the fabric's ECMP maps the flow to while
// all switches are healthy.
func (d *Deployment) SwitchFor(key FiveTuple) *core.Switch {
	return d.switches[key.SymmetricHash()%uint64(len(d.switches))]
}

// AddClient attaches a traffic endpoint outside the data center (on core
// c).
func (d *Deployment) AddClient(c int, name string, ip Addr) *topo.Host {
	return d.Testbed.AddExternalHost(c, name, ip)
}

// AddServer attaches a rack server under ToR rack.
func (d *Deployment) AddServer(rack int, name string, ip Addr) *topo.Host {
	return d.Testbed.AddRackHost(rack, name, ip)
}

// RegisterServiceIP routes a virtual service address (NAT public IP,
// load-balancer VIP) to the aggregation layer.
func (d *Deployment) RegisterServiceIP(ip Addr) { d.Testbed.RegisterServiceIP(ip) }

// RunFor advances the simulation to the given virtual time offset.
func (d *Deployment) RunFor(dur time.Duration) { d.Sim.RunUntil(netsim.Duration(dur)) }

// Run drains all pending events. With a state store attached, periodic
// protocol timers (lease renewal) reschedule themselves indefinitely —
// as does gauge sampling when Obs.SamplePeriod is set — so prefer
// RunFor with an explicit horizon; Run only terminates for NoStore
// deployments without sampling.
func (d *Deployment) Run() { d.Sim.Run() }

// Observe returns the deployment's observability registry: every
// counter, gauge, sampled series, and the event tracer (nil unless
// Obs.TraceEvents enabled it).
func (d *Deployment) Observe() *obs.Registry { return d.reg }

// Now returns the current virtual time.
func (d *Deployment) Now() Time { return d.Sim.Now() }

// FailurePlan re-exports the failure injection schedule.
type FailurePlan = failure.Plan

// FaultEvent and FaultSchedule re-export the generalized multi-event
// fault schedule used by the chaos harness.
type (
	FaultEvent    = failure.Event
	FaultSchedule = failure.Schedule
)

// ScheduleFailure installs a failure/recovery schedule for switch i.
func (d *Deployment) ScheduleFailure(p FailurePlan) {
	failure.ApplyPlan(d.Sim, d.Testbed, d.switches[p.Agg], p)
}

// ScheduleFaultEvents installs a multi-event fault schedule covering
// aggregation switches and store-chain servers.
func (d *Deployment) ScheduleFaultEvents(sched FaultSchedule) {
	t := failure.Targets{
		Testbed: d.Testbed,
		Agg: func(i int) failure.Switchlike {
			if i < 0 || i >= len(d.switches) {
				return nil
			}
			return d.switches[i]
		},
	}
	if d.Cluster != nil {
		t.Store = func(shard, replica int) failure.Switchlike {
			if shard < 0 || shard >= d.Cluster.Shards() ||
				replica < 0 || replica >= d.Cluster.Replicas() {
				return nil
			}
			return d.Cluster.Server(shard, replica)
		}
	}
	failure.Install(d.Sim, t, sched)
}

// CheckLinearizable validates the recorded history against the per-flow
// counter machine; it returns nil when no history was recorded.
func (d *Deployment) CheckLinearizable() error {
	if d.Hist == nil {
		return nil
	}
	return d.Hist.CheckCounterLinearizable()
}
