package redplane

import (
	"time"

	"redplane/internal/core"
	"redplane/internal/failure"
	"redplane/internal/netsim"
	"redplane/internal/packet"
	"redplane/internal/store"
	"redplane/internal/topo"
)

// DeploymentConfig describes a RedPlane deployment on the simulated
// testbed: how many programmable switches fill the aggregation layer,
// the application each runs, the consistency mode, and the state store's
// shape.
type DeploymentConfig struct {
	// Seed drives the deterministic simulation.
	Seed int64

	// NewApp builds the application instance for switch i. Required.
	NewApp func(i int) App

	// Mode is the consistency mode (default Linearizable).
	Mode Mode

	// Switches is the number of programmable aggregation switches
	// (default 2, as on the paper's testbed).
	Switches int

	// StoreShards and StoreReplicas shape the state store (defaults 1
	// shard, 3-way chain replication, as in the prototype).
	StoreShards, StoreReplicas int

	// StoreService is the per-request service time at a store server
	// (default 2 µs, approximating the kernel-bypass server).
	StoreService time.Duration

	// InitState is the store-side state initializer for new flows (the
	// place shared pools live; see internal/apps allocators).
	InitState func(key FiveTuple) []uint64

	// SnapshotSlots is the store's expected snapshot image size for
	// bounded-inconsistency apps.
	SnapshotSlots int

	// Protocol tunes the replication protocol; zero value means
	// DefaultProtocolConfig.
	Protocol ProtocolConfig

	// Fabric overrides the testbed link configuration (zero value means
	// the default 100 Gbps / 800 ns fabric).
	Fabric netsim.LinkConfig

	// RecordHistory enables input/output event recording for the
	// linearizability checker.
	RecordHistory bool

	// NoStore disables the state store entirely: switches run the
	// application without fault tolerance (the paper's baselines).
	NoStore bool

	// LocalInit seeds per-flow state in NoStore mode; the switch ID
	// allows per-switch pools (baseline state is switch-local).
	LocalInit func(switchID int, key FiveTuple) []uint64

	// LocalInitExtraDelay models an external controller on baseline
	// flow setup.
	LocalInitExtraDelay time.Duration

	// StoreIgnoreSeq disables the store's sequence serialization — the
	// Fig. 6a ablation. Experiments only.
	StoreIgnoreSeq bool
}

// Deployment is a running RedPlane testbed: simulator, topology,
// switches, and state store, plus helpers to attach traffic endpoints
// and inject failures.
type Deployment struct {
	Sim     *netsim.Sim
	Testbed *topo.Testbed
	Cluster *store.Cluster
	Hist    *History

	switches []*core.Switch
	swIPs    []packet.Addr
}

// NewDeployment builds and wires the testbed.
func NewDeployment(cfg DeploymentConfig) *Deployment {
	if cfg.NewApp == nil {
		panic("redplane: DeploymentConfig.NewApp is required")
	}
	if cfg.Switches == 0 {
		cfg.Switches = 2
	}
	if cfg.StoreShards == 0 {
		cfg.StoreShards = 1
	}
	if cfg.StoreReplicas == 0 {
		cfg.StoreReplicas = 3
	}
	if cfg.StoreService == 0 {
		cfg.StoreService = 2 * time.Microsecond
	}
	if cfg.Protocol.LeasePeriod == 0 {
		cfg.Protocol = DefaultProtocolConfig()
	}
	if cfg.Fabric.Delay == 0 && cfg.Fabric.Bandwidth == 0 {
		cfg.Fabric = netsim.LinkConfig{Delay: 800 * time.Nanosecond, Bandwidth: 100e9}
	}

	sim := netsim.New(cfg.Seed)
	d := &Deployment{Sim: sim}
	if cfg.RecordHistory {
		d.Hist = &History{}
		cfg.Protocol.History = d.Hist
	}
	cfg.Protocol.LocalInit = cfg.LocalInit
	cfg.Protocol.LocalInitExtraDelay = cfg.LocalInitExtraDelay

	var locator core.StoreLocator
	if !cfg.NoStore {
		d.Cluster = store.NewCluster(sim, cfg.StoreShards, cfg.StoreReplicas,
			store.Config{
				LeasePeriod:   cfg.Protocol.LeasePeriod,
				InitState:     cfg.InitState,
				SnapshotSlots: cfg.SnapshotSlots,
				IgnoreSeq:     cfg.StoreIgnoreSeq,
			},
			cfg.StoreService,
			func(shard, replica int) packet.Addr {
				return packet.MakeAddr(10, 100, byte(shard+1), byte(replica+1))
			})
		locator = d.Cluster
	}

	var aggs []topo.RoutedNode
	for i := 0; i < cfg.Switches; i++ {
		ip := packet.MakeAddr(10, 254, 0, byte(i+1))
		d.swIPs = append(d.swIPs, ip)
		sw := core.NewSwitch(sim, i, "redplane-sw"+string(rune('0'+i)), ip,
			cfg.NewApp(i), cfg.Mode, locator, cfg.Protocol)
		d.switches = append(d.switches, sw)
		aggs = append(aggs, sw)
	}

	d.Testbed = topo.NewTestbed(sim, topo.TestbedConfig{Fabric: cfg.Fabric, Cores: 2, ToRs: 2}, aggs)
	for i, ip := range d.swIPs {
		d.Testbed.RegisterAggIP(i, ip)
	}

	if d.Cluster != nil {
		// Store servers keep their full-rate NICs even when the fabric
		// is scaled down for simulation tractability: the paper's store
		// uses 100 Gbps kernel-bypass NICs, so its links are never the
		// scaled bottleneck.
		storeLink := cfg.Fabric
		if storeLink.Bandwidth > 0 && storeLink.Bandwidth < 100e9 {
			storeLink.Bandwidth *= 4
		}
		for si, srv := range d.Cluster.All() {
			rack := (si % cfg.StoreReplicas) % 2
			srv.SetPort(d.Testbed.AddRackNodeLink(rack, srv, srv.IP, storeLink))
			srv.SwitchAddr = d.SwitchIP
		}
	}
	return d
}

// Switch returns programmable switch i.
func (d *Deployment) Switch(i int) *core.Switch { return d.switches[i] }

// Switches returns the switch count.
func (d *Deployment) Switches() int { return len(d.switches) }

// SwitchIP returns switch i's protocol address.
func (d *Deployment) SwitchIP(i int) Addr { return d.swIPs[i] }

// SwitchFor returns the switch the fabric's ECMP maps the flow to while
// all switches are healthy.
func (d *Deployment) SwitchFor(key FiveTuple) *core.Switch {
	return d.switches[key.SymmetricHash()%uint64(len(d.switches))]
}

// AddClient attaches a traffic endpoint outside the data center (on core
// c).
func (d *Deployment) AddClient(c int, name string, ip Addr) *topo.Host {
	return d.Testbed.AddExternalHost(c, name, ip)
}

// AddServer attaches a rack server under ToR rack.
func (d *Deployment) AddServer(rack int, name string, ip Addr) *topo.Host {
	return d.Testbed.AddRackHost(rack, name, ip)
}

// RegisterServiceIP routes a virtual service address (NAT public IP,
// load-balancer VIP) to the aggregation layer.
func (d *Deployment) RegisterServiceIP(ip Addr) { d.Testbed.RegisterServiceIP(ip) }

// RunFor advances the simulation to the given virtual time offset.
func (d *Deployment) RunFor(dur time.Duration) { d.Sim.RunUntil(netsim.Duration(dur)) }

// Run drains all pending events. With a state store attached, periodic
// protocol timers (lease renewal) reschedule themselves indefinitely, so
// prefer RunFor with an explicit horizon; Run only terminates for
// NoStore deployments.
func (d *Deployment) Run() { d.Sim.Run() }

// Now returns the current virtual time.
func (d *Deployment) Now() Time { return d.Sim.Now() }

// FailurePlan re-exports the failure injection schedule.
type FailurePlan = failure.Plan

// ScheduleFailure installs a failure/recovery schedule for switch i.
func (d *Deployment) ScheduleFailure(p FailurePlan) {
	failure.Schedule(d.Sim, d.Testbed, d.switches[p.Agg], p)
}

// CheckLinearizable validates the recorded history against the per-flow
// counter machine; it returns nil when no history was recorded.
func (d *Deployment) CheckLinearizable() error {
	if d.Hist == nil {
		return nil
	}
	return d.Hist.CheckCounterLinearizable()
}
