package redplane

// DeploymentSnapshot is a point-in-time view of the whole testbed: one
// SwitchStats per programmable switch, one StoreServerStats per store
// replica (chain order, head first), and cross-component totals. It is
// the deployment-level counterpart of Switch.Stats().
type DeploymentSnapshot struct {
	// At is the virtual time the snapshot was taken.
	At Time

	Switches []SwitchStats
	Store    []StoreServerStats

	Totals SnapshotTotals
}

// SnapshotTotals aggregates the counters experiments usually want
// whole-deployment answers for. Store-side lease and replication
// counters only advance on the chain head (replicas apply updates
// without reprocessing), so summing over all servers does not double
// count.
type SnapshotTotals struct {
	// Switch-side.
	PacketsIn, PacketsOut  uint64
	ReplSends, Retransmits uint64
	EmulatedDrops          uint64
	LeaseAcquired          uint64
	BufferedReads          uint64
	SnapshotPackets        uint64
	MirrorOverflow         uint64
	// EgressBatches/EgressMsgs count coalesced protocol datagrams and
	// the messages they carried (zero with batching off).
	EgressBatches, EgressMsgs uint64

	// Store-side.
	LeaseGrants, LeaseRenewals uint64
	LeaseMigrated              uint64
	ReplApplied, ReplStale     uint64
	StoreDroppedRequests       uint64
	// StoreShedMsgs counts messages shed by the bounded store ingress
	// queue (a subset of StoreDroppedRequests' causes, counted per
	// message even when a whole batch is shed).
	StoreShedMsgs uint64
	// StoreOverlappingGrants counts leases granted while another
	// unexpired lease existed — always zero for a correct protocol (the
	// chaos harness asserts this).
	StoreOverlappingGrants uint64
	// StoreWALBytes sums durable write-ahead-log bytes over all servers
	// (zero with durability off).
	StoreWALBytes uint64
	// StoreStaleViewDrops counts chain/request messages fenced for
	// carrying a stale view number or arriving at a spliced-out replica.
	StoreStaleViewDrops uint64
	// Membership reflects the chain coordinator's activity (zero values
	// without StoreMembership).
	MemberViewChanges uint64
	MemberSpliceOuts  uint64
	MemberRejoins     uint64
	MemberResyncFlows uint64
}

// Snapshot captures the current counters of every switch and store
// server plus deployment-wide totals.
func (d *Deployment) Snapshot() DeploymentSnapshot {
	snap := DeploymentSnapshot{At: d.Sim.Now()}
	for _, sw := range d.switches {
		st := sw.Stats()
		snap.Switches = append(snap.Switches, st)
		snap.Totals.PacketsIn += st.PacketsIn
		snap.Totals.PacketsOut += st.PacketsOut
		snap.Totals.ReplSends += st.ReplSends
		snap.Totals.Retransmits += st.Retransmits
		snap.Totals.EmulatedDrops += st.EmulatedDrops
		snap.Totals.LeaseAcquired += st.LeaseAcquired
		snap.Totals.BufferedReads += st.BufferedReads
		snap.Totals.SnapshotPackets += st.SnapshotPackets
		snap.Totals.MirrorOverflow += st.MirrorOverflow
		snap.Totals.EgressBatches += st.EgressBatches
		snap.Totals.EgressMsgs += st.EgressMsgs
	}
	if d.Cluster != nil {
		for _, st := range d.Cluster.Stats() {
			snap.Store = append(snap.Store, st)
			snap.Totals.LeaseGrants += st.Shard.LeaseGrants
			snap.Totals.LeaseRenewals += st.Shard.LeaseRenewals
			snap.Totals.LeaseMigrated += st.Shard.LeaseMigrated
			snap.Totals.ReplApplied += st.Shard.ReplApplied
			snap.Totals.ReplStale += st.Shard.ReplStale
			snap.Totals.StoreDroppedRequests += st.DroppedRequests
			snap.Totals.StoreShedMsgs += st.ShedMsgs
			snap.Totals.StoreOverlappingGrants += st.Shard.OverlappingGrants
			snap.Totals.StoreWALBytes += st.WALBytes
			snap.Totals.StoreStaleViewDrops += st.StaleViewDrops
		}
	}
	if d.Coordinator != nil {
		ms := d.Coordinator.Stats()
		snap.Totals.MemberViewChanges = ms.ViewChanges
		snap.Totals.MemberSpliceOuts = ms.SpliceOuts
		snap.Totals.MemberRejoins = ms.Rejoins
		snap.Totals.MemberResyncFlows = ms.ResyncFlows
	}
	return snap
}

// ChainDigests returns the per-replica state digests of every store
// chain, [shard][replica] (head first); nil without a store. After
// quiescence a healthy chain's digests all agree.
func (d *Deployment) ChainDigests() [][]uint64 {
	if d.Cluster == nil {
		return nil
	}
	return d.Cluster.ChainDigests()
}

// ChainAgreement checks that every store chain's replicas digest
// identically (nil without a store). Meaningful only after quiescence
// with all store servers recovered.
func (d *Deployment) ChainAgreement() error {
	if d.Cluster == nil {
		return nil
	}
	return d.Cluster.ChainAgreement()
}
