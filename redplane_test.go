package redplane

import (
	"testing"
	"time"

	"redplane/internal/apps"
	"redplane/internal/netsim"
	"redplane/internal/packet"
)

func TestDeploymentEndToEndFailover(t *testing.T) {
	d := NewDeployment(DeploymentConfig{
		Seed:          1,
		NewApp:        func(i int) App { return apps.SyncCounter{} },
		RecordHistory: true,
	})
	src := d.AddClient(0, "client", MakeAddr(100, 0, 0, 1))
	dst := d.AddServer(0, "server", MakeAddr(10, 0, 0, 50))
	delivered := 0
	var lastObserved uint64
	dst.Handler = func(f *netsim.Frame) {
		if f.Pkt != nil {
			delivered++
			lastObserved = f.Pkt.Observed
		}
	}

	key := FiveTuple{Src: src.IP, Dst: dst.IP, SrcPort: 7777, DstPort: 80, Proto: packet.ProtoTCP}
	send := func(n int, startSeq uint64) {
		for i := 0; i < n; i++ {
			p := packet.NewTCP(src.IP, dst.IP, 7777, 80, packet.FlagACK, 0)
			p.Seq = startSeq + uint64(i)
			src.SendPacket(p)
		}
	}

	send(10, 1)
	d.RunFor(100 * time.Millisecond)
	owner := d.SwitchFor(key)
	if !owner.HasLease(key) {
		t.Fatal("owner has no lease")
	}

	// Fail the owner, detect after 50 ms, never recover.
	d.ScheduleFailure(FailurePlan{
		Agg: owner.ID(), FailAt: 110 * time.Millisecond, DetectDelay: 50 * time.Millisecond,
	})
	d.RunFor(300 * time.Millisecond)
	send(10, 11)
	// The sibling acquires the lease once the failed switch's lease
	// expires (~1.1 s in); sample while the flow is still fresh.
	d.RunFor(1500 * time.Millisecond)
	other := d.Switch(1 - owner.ID())
	if !other.HasLease(key) {
		t.Error("sibling never took over")
	}
	d.RunFor(3 * time.Second)

	if delivered < 15 {
		t.Errorf("delivered %d/20 (up to a few in-flight drops are expected at failover)", delivered)
	}
	if lastObserved != 20 {
		t.Errorf("final counter = %d, want 20 (state survived failover)", lastObserved)
	}
	if err := d.CheckLinearizable(); err != nil {
		t.Errorf("history: %v", err)
	}
	// The idle flow's lease subsequently lapses (activity-based
	// renewal), releasing ownership back to the store.
	if other.HasLease(key) {
		t.Error("idle flow retained its lease indefinitely")
	}
}

func TestDeploymentDefaultsAndAccessors(t *testing.T) {
	d := NewDeployment(DeploymentConfig{NewApp: func(i int) App { return apps.SyncCounter{} }})
	if d.Switches() != 2 || d.Cluster == nil {
		t.Error("defaults wrong")
	}
	if d.SwitchIP(0) == d.SwitchIP(1) {
		t.Error("switch IPs collide")
	}
	if d.Switch(0).ID() != 0 {
		t.Error("switch accessor")
	}
	if d.Now() != 0 {
		t.Error("clock should start at zero")
	}
	d.RunFor(time.Millisecond)
	if d.Now() != Time(netsim.Duration(time.Millisecond)) {
		t.Error("RunFor did not advance clock")
	}
	if err := d.CheckLinearizable(); err != nil {
		t.Error("no-history check should pass")
	}
}

func TestDeploymentNoStoreBaseline(t *testing.T) {
	d := NewDeployment(DeploymentConfig{
		Seed:     2,
		NewApp:   func(i int) App { return apps.SyncCounter{} },
		Baseline: BaselineConfig{NoStore: true},
	})
	src := d.AddClient(0, "client", MakeAddr(100, 0, 0, 1))
	dst := d.AddServer(0, "server", MakeAddr(10, 0, 0, 50))
	got := 0
	dst.Handler = func(f *netsim.Frame) { got++ }
	for i := 0; i < 5; i++ {
		p := packet.NewTCP(src.IP, dst.IP, 7777, 80, packet.FlagACK, 0)
		p.Seq = uint64(i + 1)
		src.SendPacket(p)
	}
	d.Run()
	if got != 5 {
		t.Errorf("baseline delivered %d/5", got)
	}
	if d.Cluster != nil {
		t.Error("NoStore deployment built a cluster")
	}
}

func TestDeploymentRequiresApp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic without NewApp")
		}
	}()
	NewDeployment(DeploymentConfig{})
}

func TestSequencerLinearizableAcrossFailover(t *testing.T) {
	// Table 1: an in-network sequencer's failure causes "incorrect
	// sequencing" without fault tolerance. With RedPlane, the stamps a
	// failed-over sequencer hands out continue the old sequence — checked
	// by the counter-machine linearizability checker over the stamps.
	d := NewDeployment(DeploymentConfig{
		Seed:          5,
		NewApp:        func(i int) App { return &apps.Sequencer{GroupPort: 7000} },
		RecordHistory: true,
	})
	client := d.AddClient(0, "client", MakeAddr(100, 0, 0, 1))
	group := d.AddServer(0, "group", MakeAddr(10, 0, 0, 60))
	var stamps []uint64
	group.Handler = func(f *netsim.Frame) {
		if f.Pkt != nil {
			stamps = append(stamps, f.Pkt.Observed)
		}
	}
	// One 5-tuple for all requests: the fabric's ECMP affinity must match
	// the sequencer's partition (§2: ECMP "configured to use the
	// partition key as their hash key").
	send := func(n int, from uint64) {
		for i := 0; i < n; i++ {
			p := packet.NewUDP(client.IP, group.IP, 100, 7000, 32)
			p.Seq = from + uint64(i)
			client.SendPacket(p)
		}
	}
	send(20, 1)
	d.RunFor(100 * time.Millisecond)
	routeKey := FiveTuple{Src: client.IP, Dst: group.IP, SrcPort: 100,
		DstPort: 7000, Proto: packet.ProtoUDP}
	owner := d.SwitchFor(routeKey)
	d.ScheduleFailure(FailurePlan{Agg: owner.ID(), FailAt: 110 * time.Millisecond,
		DetectDelay: 50 * time.Millisecond})
	d.RunFor(300 * time.Millisecond)
	send(20, 21)
	d.RunFor(3 * time.Second)

	if err := d.CheckLinearizable(); err != nil {
		t.Fatalf("sequencing broke across failover: %v", err)
	}
	// Stamps never repeat and the post-failover stamps continue past the
	// pre-failure maximum (no rollback to 1).
	seen := map[uint64]bool{}
	var max uint64
	for _, s := range stamps {
		if seen[s] {
			t.Fatalf("stamp %d issued twice", s)
		}
		seen[s] = true
		if s > max {
			max = s
		}
	}
	if max != 40 {
		t.Errorf("final stamp %d, want 40", max)
	}
}

func TestThreeSwitchDeploymentCascadingFailover(t *testing.T) {
	// Beyond the paper's two-switch testbed: three programmable switches
	// share the aggregation layer; two of them fail in sequence and the
	// flow's state follows it to whichever switch remains.
	d := NewDeployment(DeploymentConfig{
		Seed:          13,
		Switches:      3,
		NewApp:        func(i int) App { return apps.SyncCounter{} },
		RecordHistory: true,
	})
	client := d.AddClient(0, "client", MakeAddr(100, 0, 0, 1))
	server := d.AddServer(0, "server", MakeAddr(10, 0, 0, 50))
	var last uint64
	server.Handler = func(f *netsim.Frame) {
		if f.Pkt != nil {
			last = f.Pkt.Observed
		}
	}
	send := func(n int, from uint64) {
		for i := 0; i < n; i++ {
			p := packet.NewTCP(client.IP, server.IP, 4242, 80, packet.FlagACK, 0)
			p.Seq = from + uint64(i)
			client.SendPacket(p)
		}
	}

	send(10, 1)
	d.RunFor(100 * time.Millisecond)
	key := FiveTuple{Src: client.IP, Dst: server.IP, SrcPort: 4242, DstPort: 80, Proto: 6}
	first := d.SwitchFor(key)
	d.ScheduleFailure(FailurePlan{Agg: first.ID(), FailAt: 110 * time.Millisecond,
		DetectDelay: 50 * time.Millisecond})
	d.RunFor(300 * time.Millisecond)

	send(10, 11)
	d.RunFor(2 * time.Second)
	// Find the new owner among the survivors and fail it too.
	second := -1
	for i := 0; i < 3; i++ {
		if i != first.ID() && d.Switch(i).HasLease(key) {
			second = i
		}
	}
	if second < 0 {
		t.Fatal("no survivor took the flow over")
	}
	d.ScheduleFailure(FailurePlan{Agg: second, FailAt: 2500 * time.Millisecond,
		DetectDelay: 50 * time.Millisecond})
	d.RunFor(2700 * time.Millisecond)
	send(10, 21)
	d.RunFor(6 * time.Second)

	if last != 30 {
		t.Errorf("final counter %d, want 30 across two failovers", last)
	}
	if err := d.CheckLinearizable(); err != nil {
		t.Errorf("history: %v", err)
	}
}
