// Package redplane is a fault-tolerant state store for stateful in-switch
// applications, reproducing "RedPlane: Enabling Fault-Tolerant Stateful
// In-Switch Applications" (SIGCOMM 2021) in Go.
//
// Stateful applications running on programmable switches — NATs,
// firewalls, load balancers, cellular gateways, monitors — lose their
// state when a switch fails or traffic reroutes, breaking connections en
// masse. RedPlane continuously replicates per-flow state updates from the
// switch data plane to an external state store built on commodity
// servers, giving applications consistent access to their state wherever
// their traffic lands: the illusion of one big fault-tolerant switch.
//
// Applications implement the App interface (a deterministic transition
// function from input packet and current state to output packets and new
// state, partitioned by a per-packet flow key) and choose a consistency
// mode: Linearizable, which records every state update durably before the
// corresponding output is released, or BoundedInconsistency, which
// asynchronously replicates periodic snapshots of approximate structures
// like sketches.
//
// The package runs deployments on a deterministic discrete-event network
// simulator with the paper's evaluation topology: programmable switches
// in the aggregation layer, ECMP routing, and a sharded,
// chain-replicated state store on rack servers. See the examples
// directory for runnable end-to-end scenarios and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package redplane

import (
	"redplane/internal/core"
	"redplane/internal/netsim"
	"redplane/internal/obs"
	"redplane/internal/packet"
	"redplane/internal/repl"
	"redplane/internal/store"
)

// App is a stateful in-switch application; see internal/core.App for the
// contract. Implementations are plain Go values: the deployment installs
// one instance per switch.
type App = core.App

// SnapshotApp is an App that additionally exposes lazily-snapshotted
// structures for bounded-inconsistency replication.
type SnapshotApp = core.SnapshotApp

// SnapshotPartition pairs a snapshot-replicated structure with its store
// key.
type SnapshotPartition = core.SnapshotPartition

// SnapshotSource is a structure supporting consistent snapshots under
// concurrent updates (internal/sketch provides implementations).
type SnapshotSource = core.SnapshotSource

// Mode selects a consistency mode.
type Mode = core.Mode

// Consistency modes (§4 of the paper).
const (
	// Linearizable provides per-flow linearizability: behavior
	// indistinguishable from a single switch that never fails.
	Linearizable = core.Linearizable
	// BoundedInconsistency permits up to one snapshot period of updates
	// to be lost on failure, recovering to a consistent snapshot.
	BoundedInconsistency = core.BoundedInconsistency
)

// InstallPath says how migrated state installs into the data plane.
type InstallPath = core.InstallPath

// Install paths.
const (
	// InstallRegister installs entirely in the data plane.
	InstallRegister = core.InstallRegister
	// InstallTable routes through the switch control plane, adding its
	// latency to a flow's first packet.
	InstallTable = core.InstallTable
)

// ProtocolConfig tunes the replication protocol (lease period, renewal
// interval, retransmission timeout, snapshot period).
type ProtocolConfig = core.Config

// DefaultProtocolConfig returns the paper's parameters: 1 s leases,
// 0.5 s renewals, 1 ms snapshots.
func DefaultProtocolConfig() ProtocolConfig { return core.DefaultConfig() }

// History records input/output events for offline correctness checking;
// CheckCounterLinearizable validates per-flow linearizability of counter
// histories (Definitions 2-4 of the paper).
type History = core.History

// WriteJournal records acknowledged replicated writes across all
// switches; JournalEntry is one such write. Enabled by
// DeploymentConfig.RecordJournal and consumed by internal/chaos's
// no-lost-write checker.
type (
	WriteJournal = core.WriteJournal
	JournalEntry = core.JournalEntry
)

// Packet is the simulated network packet.
type Packet = packet.Packet

// FiveTuple is the canonical per-flow partition key.
type FiveTuple = packet.FiveTuple

// Addr is an IPv4 address.
type Addr = packet.Addr

// MakeAddr builds an address from dotted-quad components.
func MakeAddr(a, b, c, d byte) Addr { return packet.MakeAddr(a, b, c, d) }

// Time is virtual simulation time in nanoseconds.
type Time = netsim.Time

// SwitchStats is the per-switch counter snapshot returned by
// Switch.Stats().
type SwitchStats = core.SwitchStats

// StoreServerStats is the per-store-server counter snapshot returned by
// Cluster.Stats().
type StoreServerStats = store.ServerStats

// Replicator is the pluggable replication-engine contract the state
// store drives; see internal/repl for the two built-in engines and
// store.WithReplicator for installing a custom one.
type Replicator = repl.Replicator

// ReplicationConfig groups the replication knobs of a deployment —
// engine name, group size, queue bound, flush window, fsync delay — as
// DeploymentConfig.Replication.
type ReplicationConfig = repl.Config

// Replication engine names for ReplicationConfig.Engine and the CLI
// -engine flags.
const (
	// EngineChain is the paper's chain replication (the default).
	EngineChain = repl.EngineChain
	// EngineQuorum is the leader-based majority-acknowledgment engine.
	EngineQuorum = repl.EngineQuorum
)

// Registry is the observability registry returned by
// Deployment.Observe(): namespaced counters and gauges, sampled series,
// and the event tracer.
type Registry = obs.Registry

// Tracer is the bounded ring buffer of protocol events.
type Tracer = obs.Tracer

// TraceEvent is one traced protocol event, stamped with virtual time.
type TraceEvent = obs.Event

// TraceEventType discriminates protocol events (lease grant, replication
// send, retransmit, failure, ...).
type TraceEventType = obs.EventType

// Series is a sampled gauge timeline (virtual-time/value pairs).
type Series = obs.Series
