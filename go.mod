module redplane

go 1.22
