// EPC serving gateway: the paper's mixed-read/write application (§2, §6).
//
// A cellular serving gateway routes user data by per-user tunnel
// endpoint ID (TEID) state: signaling messages (device attach, handover)
// write it; every data packet reads it. RedPlane replicates the signaling
// updates synchronously, so when the switch fails, users' sessions
// migrate to the alternate switch instead of being torn down ("affected
// users need to re-establish connections" without it, §2.1).
//
//	go run ./examples/epc-sgw
package main

import (
	"fmt"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/netsim"
	"redplane/internal/packet"
)

func main() {
	var sgws []*apps.EPCSGW
	d := redplane.NewDeployment(redplane.DeploymentConfig{
		Seed: 11,
		NewApp: func(i int) redplane.App {
			s := &apps.EPCSGW{}
			sgws = append(sgws, s)
			return s
		},
	})

	ran := d.AddServer(0, "ran", redplane.MakeAddr(10, 0, 0, 50)) // radio side
	pdn := d.AddClient(0, "pdn", redplane.MakeAddr(100, 0, 0, 9)) // internet side

	forwarded := map[uint32]int{} // downstream TEID -> packets
	pdn.Handler = func(f *netsim.Frame) {
		if f.Pkt != nil && f.Pkt.HasGTP {
			forwarded[f.Pkt.GTP.TEID]++
		}
	}

	gtp := func(teid uint32, msgType uint8, val uint16) {
		p := packet.NewUDP(ran.IP, pdn.IP, 40000, packet.GTPPort, 64)
		p.HasGTP = true
		p.GTP = packet.GTP{Version: 1, MsgType: msgType, TEID: teid, Len: val}
		ran.SendPacket(p)
	}

	// Attach 3 users: signaling installs their forwarding state (the
	// write path, replicated synchronously before the ack releases).
	for u := uint32(1); u <= 3; u++ {
		gtp(u, packet.GTPMsgSignaling, uint16(100*u))
	}
	d.RunFor(10 * time.Millisecond)

	// User data flows (the read path — no per-packet replication).
	for i := 0; i < 30; i++ {
		gtp(uint32(1+i%3), packet.GTPMsgData, 0)
	}
	d.RunFor(50 * time.Millisecond)
	fmt.Printf("pre-failure: forwarded per downstream TEID: %v\n", forwarded)

	// Fail the switch owning user 1's session.
	key, _ := (&apps.EPCSGW{}).Key(&packet.Packet{HasGTP: true,
		GTP: packet.GTP{TEID: 1, MsgType: packet.GTPMsgData}})
	owner := d.SwitchFor(key)
	d.ScheduleFailure(redplane.FailurePlan{
		Agg: owner.ID(), FailAt: 70 * time.Millisecond, DetectDelay: 30 * time.Millisecond,
	})
	d.RunFor(200 * time.Millisecond)
	fmt.Printf("%s failed; sessions' TEID state lives in the store\n", owner.Name())

	// A handover for user 1 (a write) plus more data — both served by
	// the surviving switch with the migrated session state.
	gtp(1, packet.GTPMsgSignaling, 999)
	d.RunFor(50 * time.Millisecond)
	for i := 0; i < 10; i++ {
		gtp(1, packet.GTPMsgData, 0)
	}
	d.RunFor(3 * time.Second)

	fmt.Printf("post-failure: forwarded per downstream TEID: %v\n", forwarded)
	switch {
	case forwarded[999] > 0:
		fmt.Println("user 1's session survived the failure AND its handover applied")
	case forwarded[100] > 10:
		fmt.Println("user 1's session survived the failure (handover still in flight)")
	default:
		fmt.Println("UNEXPECTED: session broke across the failure")
	}
	for i, s := range sgws {
		fmt.Printf("sgw on switch %d: %d signals processed, %d sessionless drops\n",
			i, s.Signals, s.Drops)
	}
}
