// Real-UDP RedPlane: the wire protocol outside the simulator.
//
// This example starts a 3-server chain-replicated state store as real
// UDP processes (in-process goroutines here; cmd/redplane-store runs the
// same server standalone), then acts as two switches contending for the
// same flow: leases serialize them, sequence numbers order the writes,
// and chain replication makes every update durable on all three servers
// before its acknowledgment releases.
//
//	go run ./examples/kvstore-udp
package main

import (
	"fmt"
	"log"
	"time"

	"redplane/internal/packet"
	"redplane/internal/store"
	"redplane/internal/wire"
)

func main() {
	// Build the chain tail-first so each server knows its successor.
	cfg := store.Config{LeasePeriod: 500 * time.Millisecond}
	var servers []*store.UDPServer
	next := ""
	for i := 0; i < 3; i++ {
		srv, err := store.NewUDPServer("127.0.0.1:0", next, cfg)
		if err != nil {
			log.Fatal(err)
		}
		next = srv.Addr().String()
		go func() { _ = srv.Serve() }()
		defer srv.Close()
		servers = append([]*store.UDPServer{srv}, servers...)
	}
	head := servers[0]
	fmt.Printf("3-server chain up; head at %v\n", head.Addr())

	key := packet.FiveTuple{Src: packet.MakeAddr(10, 0, 0, 1),
		Dst: packet.MakeAddr(100, 0, 0, 1), SrcPort: 7777, DstPort: 80,
		Proto: packet.ProtoTCP}

	// Switch 1 takes the lease and writes.
	sw1, err := store.DialUDP(head.Addr().String(), 1)
	if err != nil {
		log.Fatal(err)
	}
	defer sw1.Close()
	ack, err := sw1.Request(&wire.Message{Type: wire.MsgLeaseNew, Key: key})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("switch 1 acquired the lease (%d ms)\n", ack.LeaseMillis)
	for seq := uint64(1); seq <= 5; seq++ {
		if _, err := sw1.Request(&wire.Message{Type: wire.MsgRepl, Key: key,
			Seq: seq, Vals: []uint64{seq * 10}}); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("switch 1 replicated 5 sequenced updates through the chain")

	// Switch 2 cannot write while switch 1 holds the lease.
	sw2, err := store.DialUDP(head.Addr().String(), 2)
	if err != nil {
		log.Fatal(err)
	}
	defer sw2.Close()
	rej, err := sw2.Request(&wire.Message{Type: wire.MsgRepl, Key: key, Seq: 6,
		Vals: []uint64{999}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("switch 2's write while switch 1 owns the flow: %v (correct)\n", rej.Type)

	// Switch 1 "fails" (stops renewing). After the lease expires, switch
	// 2's queued request is granted WITH the migrated state.
	fmt.Println("switch 1 stops renewing; switch 2 requests the flow...")
	start := time.Now()
	grant, err := sw2.Request(&wire.Message{Type: wire.MsgLeaseNew, Key: key})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("switch 2 granted after %v with state %v (seq %d) — migration, not re-init\n",
		time.Since(start).Round(time.Millisecond), grant.Vals, grant.Seq)
	if grant.NewFlow || len(grant.Vals) == 0 || grant.Vals[0] != 50 {
		log.Fatalf("state was not migrated: %+v", grant)
	}

	// Every chain replica holds the same durable state.
	for i, srv := range servers {
		vals, seq, ok := srv.State(key)
		fmt.Printf("replica %d: state=%v seq=%d ok=%v\n", i, vals, seq, ok)
	}
	fmt.Println("state survived the switch handover, durable on all replicas")
}
