// Heavy-hitter detection with bounded-inconsistency replication (§4.4,
// §5.4).
//
// A count-min sketch on the switch detects heavy flows. Sketches tolerate
// approximation, so instead of per-packet replication RedPlane snapshots
// the structure every millisecond using the lazy dual-copy mechanism
// (Algorithm 1) and replicates the image asynchronously — packets are
// never delayed. When the switch fails, the store's last complete image
// is at most one snapshot period stale: the heavy hitters are still
// identifiable.
//
//	go run ./examples/heavyhitter
package main

import (
	"fmt"
	"math/rand"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/packet"
	"redplane/internal/sketch"
)

func main() {
	var detectors []*apps.HeavyHitter
	proto := redplane.DefaultProtocolConfig()
	proto.SnapshotPeriod = time.Millisecond // T_snap = ε bound

	d := redplane.NewDeployment(redplane.DeploymentConfig{
		Seed: 3,
		NewApp: func(i int) redplane.App {
			hh := apps.NewHeavyHitter(i, 1, 0, func(*redplane.Packet) int { return 0 })
			detectors = append(detectors, hh)
			return hh
		},
		Mode:          redplane.BoundedInconsistency,
		SnapshotSlots: 192, // 3 rows x 64 slots per image
		Protocol:      proto,
	})

	client := d.AddServer(0, "gen", redplane.MakeAddr(10, 0, 0, 50))
	d.AddClient(0, "sink", redplane.MakeAddr(100, 0, 0, 9))

	// Zipf-ish traffic: flow 0 is the elephant.
	rng := rand.New(rand.NewSource(1))
	heavyKey := packet.NewTCP(client.IP, redplane.MakeAddr(100, 0, 0, 9), 1000, 80, packet.FlagACK, 0).Flow()
	for i := 0; i < 5000; i++ {
		sport := uint16(1000)
		if rng.Intn(100) < 60 { // 40% of packets are the heavy flow
			sport = uint16(1001 + rng.Intn(50))
		}
		i := i
		d.Sim.After(time.Duration(i)*2*time.Microsecond, func() {
			p := packet.NewTCP(client.IP, redplane.MakeAddr(100, 0, 0, 9), sport, 80, packet.FlagACK, 0)
			client.SendPacket(p)
		})
	}
	d.RunFor(15 * time.Millisecond)

	owner := d.SwitchFor(heavyKey)
	hh := detectors[owner.ID()]
	live := hh.Sketch(0).Estimate(heavyKey.Hash())
	fmt.Printf("live sketch on %s estimates the heavy flow at %d packets\n",
		owner.Name(), live)

	// The switch fails; its sketch is gone. Recover from the store's
	// last complete snapshot image.
	owner.Fail()
	partKey := apps.HHPartitionKey(owner.ID(), 0)
	shard := d.Cluster.ShardFor(partKey)
	img, at := d.Cluster.Head(shard).Shard().LastSnapshot(partKey)
	if img == nil {
		fmt.Println("no snapshot image replicated (run longer)")
		return
	}
	recovered := sketch.EstimateFromSnapshot(img, 3, 64, heavyKey.Hash())
	staleness := d.Now() - redplane.Time(at)
	fmt.Printf("switch failed; store image (taken %.2f ms ago) estimates it at %d\n",
		float64(staleness)/1e6, recovered)
	fmt.Printf("bounded inconsistency: at most one %v of updates lost (ε)\n", proto.SnapshotPeriod)
	if recovered == 0 {
		fmt.Println("UNEXPECTED: heavy flow lost entirely")
	} else {
		fmt.Println("the heavy hitter survives the failure within the ε bound")
	}
}
