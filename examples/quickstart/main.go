// Quickstart: make an in-switch application fault tolerant with RedPlane.
//
// This example runs the paper's worst-case app — a per-flow packet
// counter that updates state on every packet — on the simulated testbed:
// two programmable switches, a chain-replicated state store, ECMP
// routing. It sends traffic, crashes the switch holding the flow's state,
// and shows the flow's counter surviving on the alternate switch.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/netsim"
	"redplane/internal/packet"
)

func main() {
	// One call builds the whole deployment: switches, store, fabric.
	d := redplane.NewDeployment(redplane.DeploymentConfig{
		Seed:          42,
		NewApp:        func(i int) redplane.App { return apps.SyncCounter{} },
		Mode:          redplane.Linearizable,
		RecordHistory: true, // enable offline linearizability checking
	})

	client := d.AddClient(0, "client", redplane.MakeAddr(100, 0, 0, 1))
	server := d.AddServer(0, "server", redplane.MakeAddr(10, 0, 0, 50))

	var lastCount uint64
	delivered := 0
	server.Handler = func(f *netsim.Frame) {
		if f.Pkt != nil {
			delivered++
			lastCount = f.Pkt.Observed // the counter value this packet saw
		}
	}

	send := func(n int, from uint64) {
		for i := 0; i < n; i++ {
			p := packet.NewTCP(client.IP, server.IP, 5555, 80, packet.FlagACK, 0)
			p.Seq = from + uint64(i)
			client.SendPacket(p)
		}
	}

	// Phase 1: 50 packets through whichever switch ECMP picks.
	send(50, 1)
	d.RunFor(100 * time.Millisecond)
	key := redplane.FiveTuple{Src: client.IP, Dst: server.IP,
		SrcPort: 5555, DstPort: 80, Proto: 6}
	owner := d.SwitchFor(key)
	fmt.Printf("phase 1: %d packets delivered, counter=%d, flow owned by %s\n",
		delivered, lastCount, owner.Name())

	// Fail that switch. Its memory — including our counter — is gone.
	d.ScheduleFailure(redplane.FailurePlan{
		Agg: owner.ID(), FailAt: 110 * time.Millisecond,
		DetectDelay: 50 * time.Millisecond,
	})
	d.RunFor(300 * time.Millisecond)
	fmt.Printf("switch %s crashed (all on-switch state lost); fabric rerouted\n", owner.Name())

	// Phase 2: more traffic. The sibling switch acquires the lease from
	// the state store and resumes from the replicated counter value.
	send(50, 51)
	d.RunFor(5 * time.Second)

	fmt.Printf("phase 2: %d packets delivered in total, counter=%d\n", delivered, lastCount)
	if lastCount != 100 {
		log.Fatalf("state was lost: final counter %d, want 100", lastCount)
	}
	if err := d.CheckLinearizable(); err != nil {
		log.Fatalf("history not linearizable: %v", err)
	}
	fmt.Println("counter survived the switch failure; history is per-flow linearizable")
}
