// NAT failover: the paper's headline end-to-end scenario (§7.3, Fig. 14).
//
// A bulk TCP transfer runs from an internal host to an external server
// through a RedPlane-enabled NAT. The switch holding the translation
// fails mid-transfer; the fabric reroutes, the alternate switch fetches
// the translation from the state store, and the connection recovers
// within about a second — instead of breaking permanently as it would
// without fault tolerance.
//
//	go run ./examples/nat-failover
package main

import (
	"fmt"
	"time"

	"redplane"
	"redplane/internal/apps"
	"redplane/internal/netsim"
	"redplane/internal/tcpsim"
)

func main() {
	natIP := redplane.MakeAddr(203, 0, 113, 1)
	nat := &apps.NAT{
		InternalPrefix: redplane.MakeAddr(10, 0, 0, 0),
		InternalMask:   redplane.MakeAddr(255, 0, 0, 0),
		PublicIP:       natIP,
	}
	alloc := apps.NewNATAllocator(nat)

	d := redplane.NewDeployment(redplane.DeploymentConfig{
		Seed: 7,
		NewApp: func(i int) redplane.App {
			return &apps.NAT{InternalPrefix: nat.InternalPrefix,
				InternalMask: nat.InternalMask, PublicIP: natIP}
		},
		InitState: alloc.Init, // the port pool lives at the state store
		Fabric: netsim.LinkConfig{Delay: 800 * time.Nanosecond, Bandwidth: 1e9,
			QueueLimit: 2 * time.Millisecond},
	})
	d.RegisterServiceIP(natIP)

	sender := d.AddServer(0, "iperf-client", redplane.MakeAddr(10, 0, 0, 50))
	receiver := d.AddClient(0, "iperf-server", redplane.MakeAddr(100, 0, 0, 9))

	cfg := tcpsim.DefaultConfig()
	cfg.MaxCwnd = 16
	rcv := tcpsim.NewReceiver(receiver, 5001, cfg.MSS)
	perSecond := map[int]float64{}
	rcv.OnDeliver = func(b int) {
		perSecond[int(d.Now().Seconds())] += float64(b) * 8 / 1e9
	}
	snd := tcpsim.NewSender(d.Sim, sender, receiver.IP, 40000, 5001, cfg)
	snd.Start()

	// Fail the owning switch at t=5s; it recovers at t=15s.
	key := redplane.FiveTuple{Src: sender.IP, Dst: receiver.IP,
		SrcPort: 40000, DstPort: 5001, Proto: 6}
	owner := d.SwitchFor(key)
	d.ScheduleFailure(redplane.FailurePlan{
		Agg: owner.ID(), FailAt: 5 * time.Second,
		DetectDelay: 100 * time.Millisecond, RecoverAt: 15 * time.Second,
	})

	const dur = 20
	d.RunFor(dur * time.Second)

	fmt.Println("per-second TCP goodput through the RedPlane NAT (Gbps):")
	for s := 0; s < dur; s++ {
		marker := ""
		switch s {
		case 5:
			marker = "  <- switch fails (translation survives in the state store)"
		case 15:
			marker = "  <- switch recovers (lease hands back)"
		}
		fmt.Printf("  t=%2ds  %5.2f%s\n", s, perSecond[s], marker)
	}
	fmt.Printf("\ntotal transferred: %.2f GB; sender retransmits: %d\n",
		float64(rcv.BytesIn)/1e9, snd.Retransmits)
	fmt.Println("the connection survived both the failure and the recovery rehash")
}
