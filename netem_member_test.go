package redplane

import (
	"strconv"
	"strings"
	"testing"
	"time"

	"redplane/internal/apps"
	"redplane/internal/failure"
	"redplane/internal/netem"
	"redplane/internal/netsim"
	"redplane/internal/obs"
	"redplane/internal/packet"
)

// TestGrayHeadNotSplicedByLiveness pins the boundary between gray
// failure and death for the membership coordinator: a head replica
// under a gray shape (slow, lossy, throttled — but alive) must NOT be
// spliced out by liveness probes, no matter how many probe intervals
// elapse, because probes measure liveness, not latency. When the gray
// head finally does die, the splice happens and every write that was
// acknowledged through it must still be present on the survivors —
// the chain tail acked them, so the gray head was never the only copy.
func TestGrayHeadNotSplicedByLiveness(t *testing.T) {
	d := NewDeployment(DeploymentConfig{
		Seed:            5,
		NewApp:          func(int) App { return apps.SyncCounter{} },
		StoreMembership: true,
		NetEm:           netem.Config{Seed: 5, Faults: true},
	})

	sink := d.AddServer(0, "sink", MakeAddr(10, 0, 0, 50))
	delivered := 0
	sink.Handler = func(f *netsim.Frame) {
		if f.Pkt != nil {
			delivered++
		}
	}
	src := d.AddClient(0, "client", MakeAddr(100, 0, 0, 1))
	key := FiveTuple{Src: src.IP, Dst: sink.IP, SrcPort: 7777, DstPort: 80, Proto: packet.ProtoTCP}

	// A steady synchronous write stream: every delivery at the sink was
	// gated on a store commit acked by the chain tail.
	seq := uint64(0)
	end := netsim.Duration(900 * time.Millisecond)
	d.Sim.Every(0, netsim.Duration(time.Millisecond), func() bool {
		seq++
		p := packet.NewTCP(src.IP, sink.IP, 7777, 80, packet.FlagACK, 0)
		p.Seq = seq
		src.SendPacket(p)
		return d.Sim.Now() < end
	})

	// Gray the head at 100 ms. The coordinator's probe cadence is
	// DefaultProbeInterval (2 ms): between t=100ms and t=400ms it probes
	// the gray head ~150 times and must not splice it once. (RunFor
	// horizons are absolute simulation times.)
	shape := netem.DefaultGrayShape()
	d.Sim.At(netsim.Duration(100*time.Millisecond), func() {
		d.SetStoreGray(0, 0, &shape)
	})
	d.RunFor(100 * time.Millisecond)
	healthyDelivered := delivered
	d.RunFor(400 * time.Millisecond)

	if st := d.Coordinator.Stats(); st.SpliceOuts != 0 {
		t.Fatalf("gray head spliced out %d times by liveness probes; gray is slow, not dead", st.SpliceOuts)
	}
	if delivered <= healthyDelivered {
		t.Fatalf("no deliveries under gray (stuck at %d); the shape should degrade, not kill", delivered)
	}
	ackedUnderGray := delivered

	// Now the gray head actually dies (event times are offsets from
	// install time, i.e. 420 ms into the run). The very same probes that
	// held their fire must splice it out, and the acked prefix survives
	// on the promoted head.
	d.ScheduleFaultEvents(FaultSchedule{Events: []FaultEvent{
		{At: 20 * time.Millisecond, Kind: failure.StoreFail, Shard: 0, Replica: 0, Cold: true},
	}})
	d.RunFor(900 * time.Millisecond)

	if st := d.Coordinator.Stats(); st.SpliceOuts == 0 {
		t.Fatal("dead head never spliced out")
	}
	if delivered <= ackedUnderGray {
		t.Fatalf("writes stopped committing after failover (stuck at %d)", delivered)
	}
	vals, lastSeq, ok := d.Cluster.Server(0, 1).Shard().State(key)
	if !ok {
		t.Fatal("promoted head has no state for the flow")
	}
	if len(vals) == 0 || vals[0] < uint64(ackedUnderGray) {
		t.Fatalf("promoted head counter %v below the %d writes acked before the crash", vals, ackedUnderGray)
	}
	if lastSeq == 0 {
		t.Fatal("promoted head never applied a replicated write")
	}
}

// TestNetemCountersExposedToPrometheus pins the observability contract
// for the emulation subsystem: netem/gray_drops, netem/partition_drops,
// clock/max_skew_ns, and lease/skew_margin_hits all flow through the
// deployment registry and render under their exposition names in
// obs.WritePrometheus output — with the drop counters provably counting
// (a gray shape with certain loss, then a one-way cut, each dropping
// the switch's retransmitted store requests).
func TestNetemCountersExposedToPrometheus(t *testing.T) {
	d := NewDeployment(DeploymentConfig{
		Seed:   9,
		NewApp: func(int) App { return apps.SyncCounter{} },
		NetEm: netem.Config{Seed: 9, Faults: true,
			ClockDriftPPM: 200, ClockOffsetMax: time.Millisecond},
	})
	sink := d.AddServer(0, "sink", MakeAddr(10, 0, 0, 50))
	src := d.AddClient(0, "client", MakeAddr(100, 0, 0, 1))
	// Two flows on different switches: each switch's first packet is the
	// one that emits a fresh lease request toward the store, so each
	// phase needs its own previously-unseen switch.
	flow := func(sport uint16) FiveTuple {
		return FiveTuple{Src: src.IP, Dst: sink.IP, SrcPort: sport, DstPort: 80, Proto: packet.ProtoTCP}
	}
	sportA := uint16(7777)
	sportB := sportA + 1
	for d.SwitchFor(flow(sportB)) == d.SwitchFor(flow(sportA)) {
		sportB++
	}

	// Phase 1 (to t=100ms): certain-loss gray on the head's uplink. The
	// first switch's lease request dies in the shaper.
	shape := netem.GrayShape{LossGood: 1}
	d.SetStoreGray(0, 0, &shape)
	src.SendPacket(packet.NewTCP(src.IP, sink.IP, sportA, 80, packet.FlagSYN, 0))
	d.RunFor(100 * time.Millisecond)
	// Phase 2 (to t=200ms): heal the gray, cut the same direction
	// instead; the other switch's lease request dies at the cut.
	d.SetStoreGray(0, 0, nil)
	d.SetStoreOneWay(0, 0, true, true)
	src.SendPacket(packet.NewTCP(src.IP, sink.IP, sportB, 80, packet.FlagSYN, 0))
	d.RunFor(200 * time.Millisecond)

	var b strings.Builder
	if err := obs.WritePrometheus(&b, d.Observe()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, name := range []string{
		"redplane_netem_gray_drops",
		"redplane_netem_partition_drops",
		"redplane_clock_max_skew_ns",
		"redplane_lease_skew_margin_hits",
	} {
		if !strings.Contains(out, "# TYPE "+name+" ") {
			t.Errorf("missing %s in exposition:\n%s", name, out)
		}
	}
	sample := func(name string) (float64, bool) {
		for _, line := range strings.Split(out, "\n") {
			if v, found := strings.CutPrefix(line, name+" "); found {
				f, err := strconv.ParseFloat(v, 64)
				if err != nil {
					t.Fatalf("unparseable sample %q: %v", line, err)
				}
				return f, true
			}
		}
		return 0, false
	}
	if v, ok := sample("redplane_netem_gray_drops"); !ok || v == 0 {
		t.Errorf("gray_drops = %v (found %v), want > 0 under a certain-loss shape", v, ok)
	}
	if v, ok := sample("redplane_netem_partition_drops"); !ok || v == 0 {
		t.Errorf("partition_drops = %v (found %v), want > 0 under a one-way cut", v, ok)
	}
	if v, ok := sample("redplane_clock_max_skew_ns"); !ok || v == 0 {
		t.Errorf("clock_max_skew_ns = %v (found %v), want > 0 with drifting clocks", v, ok)
	}
	if v, ok := sample("redplane_lease_skew_margin_hits"); !ok || v != 0 {
		t.Errorf("skew_margin_hits = %v (found %v), want rendered 0 in a correctly-margined run", v, ok)
	}
}
