package redplane_test

// One benchmark per table and figure in the paper's evaluation (§7).
// Each bench runs the corresponding experiment driver at a CI-friendly
// scale and reports the headline quantity as a custom metric, so
// `go test -bench=. -benchmem` regenerates the whole evaluation in
// miniature; cmd/redplane-bench runs the full-scale versions.

import (
	"testing"
	"time"

	"redplane"
	"redplane/internal/experiments"
	"redplane/internal/modelcheck"
	"redplane/internal/netsim"
	"redplane/internal/packet"
)

// skipUnderRace skips the full-evaluation benchmarks when the race
// detector is on: the single-threaded simulator cannot race, and the
// 10-20x slowdown makes these runs time out in CI. The short unit and
// packet-path benches still run under -race.
func skipUnderRace(b *testing.B) {
	b.Helper()
	if raceEnabled {
		b.Skip("full-evaluation benchmark skipped under -race (single-threaded simulator; see scripts/check.sh)")
	}
}

// BenchmarkFig8LatencyNAT reproduces Fig. 8: RTT for RedPlane-NAT vs the
// five baseline NATs. Reports RedPlane-NAT's median RTT.
func BenchmarkFig8LatencyNAT(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Fig8(int64(i+1), 10_000)
		for _, r := range res.Rows {
			if r.System == "RedPlane-NAT" {
				b.ReportMetric(r.Lat.Percentile(50)/1e3, "p50-µs")
				b.ReportMetric(r.Lat.Percentile(99)/1e3, "p99-µs")
			}
		}
	}
}

// BenchmarkFig9LatencyApps reproduces Fig. 9: per-application RTT.
// Reports the worst case (Sync-Counter with chain replication).
func BenchmarkFig9LatencyApps(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Fig9(int64(i+1), 5_000)
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(last.Lat.Percentile(50)/1e3, "sync-counter-p50-µs")
	}
}

// BenchmarkFig10Bandwidth reproduces Fig. 10: replication bandwidth
// overhead per application. Reports the Sync-Counter overhead share.
func BenchmarkFig10Bandwidth(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10(int64(i+1), 10_000)
		for _, r := range res.Rows {
			if r.App == "Sync-Counter" {
				b.ReportMetric(r.OverheadPercent(), "sync-overhead-%")
			}
			if r.App == "NAT" {
				b.ReportMetric(r.OverheadPercent(), "nat-overhead-%")
			}
		}
	}
}

// BenchmarkFig11SnapshotBandwidth reproduces Fig. 11: snapshot bandwidth
// vs frequency and sketch count. Reports the 1 kHz / 3-sketch point the
// paper quotes (34.16 Mbps on their testbed).
func BenchmarkFig11SnapshotBandwidth(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Fig11(int64(i + 1))
		for _, p := range res.Points {
			if p.FrequencyHz == 1024 && p.Sketches == 3 {
				b.ReportMetric(p.Mbps, "Mbps@1kHz/3sketches")
			}
		}
	}
}

// BenchmarkFig12Throughput reproduces Fig. 12: data-plane throughput with
// and without RedPlane. Reports Sync-Counter's retained fraction.
func BenchmarkFig12Throughput(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Fig12(int64(i+1), 10*time.Millisecond)
		for _, r := range res.Rows {
			if r.App == "Sync-Counter" {
				b.ReportMetric(100*r.RedPlaneMpps/r.BaselineMpps, "sync-retained-%")
			}
			if r.App == "NAT" {
				b.ReportMetric(100*r.RedPlaneMpps/r.BaselineMpps, "nat-retained-%")
			}
		}
	}
}

// BenchmarkThroughputBatching runs the open-loop sustained-throughput
// sweep over the egress batch window and reports goodput with batching
// off and at the default chaos window, plus the ratio — the headline
// number for the batched store pipeline.
func BenchmarkThroughputBatching(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Throughput(int64(i+1), 5*time.Millisecond)
		var off, on float64
		for _, p := range res.Points {
			switch p.Window {
			case 0:
				off = p.GoodputMpps
			case 10 * time.Microsecond:
				on = p.GoodputMpps
			}
		}
		b.ReportMetric(off, "unbatched-Mpps")
		b.ReportMetric(on, "batched-10µs-Mpps")
		if off > 0 {
			b.ReportMetric(on/off, "speedup-x")
		}
	}
}

// BenchmarkThroughputDurability runs the same open-loop write-heavy load
// with the store volatile vs durable (WAL + group-commit fsync) and
// reports the goodput retained and the durable log volume — the cost of
// surviving a kill -9.
func BenchmarkThroughputDurability(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.ThroughputDurability(int64(i+1), 5*time.Millisecond)
		b.ReportMetric(res.Off.GoodputMpps, "volatile-Mpps")
		b.ReportMetric(res.On.GoodputMpps, "durable-Mpps")
		if res.Off.GoodputMpps > 0 {
			b.ReportMetric(100*res.On.GoodputMpps/res.Off.GoodputMpps, "retained-%")
		}
		b.ReportMetric(res.On.P99Us-res.Off.P99Us, "p99-delta-µs")
		b.ReportMetric(float64(res.On.WALBytes)/(1<<20), "wal-MB")
	}
}

// BenchmarkFig13KVUpdateRatio reproduces Fig. 13: key-value throughput vs
// update ratio and store count. Reports the hardest point (all updates,
// one store) and the easiest (all updates, three stores).
func BenchmarkFig13KVUpdateRatio(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Fig13(int64(i+1), 10*time.Millisecond)
		for _, p := range res.Points {
			if p.UpdateRatio == 1.0 && p.Stores == 1 {
				b.ReportMetric(p.Mpps, "u1.0-1store-Mpps")
			}
			if p.UpdateRatio == 1.0 && p.Stores == 3 {
				b.ReportMetric(p.Mpps, "u1.0-3stores-Mpps")
			}
		}
	}
}

// BenchmarkFig14Failover reproduces Fig. 14: TCP goodput through failover
// and recovery. Reports steady-state goodput and the post-failure dip.
func BenchmarkFig14Failover(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Fig14(int64(i+1), 24*time.Second)
		for _, s := range res.Series {
			if s.Label == "Failure+RedPlane" {
				b.ReportMetric(s.Mean(1, res.FailAt.Seconds()), "pre-failure-Gbps")
				b.ReportMetric(s.Mean(res.FailAt.Seconds()+2, res.RecoverAt.Seconds()), "post-failover-Gbps")
			}
		}
	}
}

// BenchmarkEngineFailover compares the chain and quorum replication
// engines on the same synchronous write workload: healthy goodput, p50
// commit latency, and the delivery stall across a store head (= quorum
// leader) cold crash with the membership coordinator splicing.
func BenchmarkEngineFailover(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.EngineFailover(int64(i+1), 1200*time.Millisecond)
		for _, r := range rows {
			b.ReportMetric(r.GoodputKpps, r.Engine+"-goodput-kpps")
			b.ReportMetric(float64(r.P50Latency)/1e3, r.Engine+"-p50-µs")
			b.ReportMetric(float64(r.FailoverStall)/1e3, r.Engine+"-failover-µs")
		}
	}
}

// BenchmarkFlowspaceScale runs the flow-space sharding weak-scaling
// sweep: per-chain offered load held constant while the chain count
// grows 1→8, flows routed by the consistent-hash ring. Reports the
// single-chain and 8-chain aggregate goodput, the scale-up ratio, and
// the worst per-chain deviation — the numbers the CI perf gate floors.
func BenchmarkFlowspaceScale(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.FlowspaceScale(int64(i+1), 5*time.Millisecond)
		rows := res.Rows
		b.ReportMetric(rows[0].GoodputMpps, "1chain-Mpps")
		b.ReportMetric(rows[len(rows)-1].GoodputMpps, "8chain-Mpps")
		b.ReportMetric(res.ScaleUp, "scaleup-x")
		b.ReportMetric(100*(1-res.Flatness), "flatness-%")
	}
}

// BenchmarkWANConsistency runs the WAN consistency sweep: a closed-loop
// workload against store chains spanning three datacenters, inter-DC
// RTT swept 0–80 ms, linearizable vs bounded-inconsistency mode.
// Reports the 40 ms goodputs and the bounded-over-linearizable speedup
// — the numbers the CI perf gate floors.
func BenchmarkWANConsistency(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.WANConsistency(int64(i+1), 200*time.Millisecond)
		for _, r := range res.Rows {
			if r.RTT == 40*time.Millisecond {
				b.ReportMetric(r.LinGoodputKpps, "lin40ms-kpps")
				b.ReportMetric(r.BndGoodputKpps, "bnd40ms-kpps")
			}
		}
		b.ReportMetric(res.SpeedupAt40, "speedup40-x")
	}
}

// BenchmarkFig15BufferOccupancy reproduces Fig. 15: retransmission buffer
// occupancy vs rate and request loss. Reports the worst corner.
func BenchmarkFig15BufferOccupancy(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Fig15(int64(i+1), 5*time.Millisecond)
		var maxKB float64
		for _, p := range res.Points {
			if p.MaxBufferKB > maxKB {
				maxKB = p.MaxBufferKB
			}
		}
		b.ReportMetric(maxKB, "max-buffer-KB")
	}
}

// BenchmarkTable2Resources reproduces Table 2 (Appendix E): additional
// ASIC resource usage at 100k flows. Reports the largest consumer (SRAM).
func BenchmarkTable2Resources(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := experiments.Table2(100_000)
		for _, r := range res.Rows {
			if r.Resource == "SRAM" {
				b.ReportMetric(r.Percent, "sram-%")
			}
		}
	}
}

// BenchmarkAblations runs the design-choice ablations (DESIGN.md §5):
// sequencing, retransmission, chain length, snapshot period, mirror
// buffer sizing.
func BenchmarkAblations(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Ablations(int64(i + 1))
		for _, r := range rows {
			if r.Name == "request sequencing" {
				b.ReportMetric(r.Without, "unseq-regressions-per-1000")
			}
		}
	}
}

// BenchmarkModelCheck explores the protocol's full state space (Appendix
// C) and reports its size.
func BenchmarkModelCheck(b *testing.B) {
	skipUnderRace(b)
	for i := 0; i < b.N; i++ {
		res := modelcheck.Run(modelcheck.DefaultConfig())
		if !res.OK() {
			b.Fatal("invariant violation")
		}
		b.ReportMetric(float64(res.States), "states")
	}
}

// BenchmarkDeploymentPacketPath measures the simulator's per-packet cost
// through the full RedPlane data path (read-centric app, warm lease).
func BenchmarkDeploymentPacketPath(b *testing.B) {
	d := redplane.NewDeployment(redplane.DeploymentConfig{
		Seed:   1,
		NewApp: func(int) redplane.App { return benchReaderApp{} },
	})
	src := d.AddClient(0, "src", redplane.MakeAddr(100, 0, 0, 1))
	dst := d.AddServer(0, "dst", redplane.MakeAddr(10, 0, 0, 50))
	_ = dst
	// Warm the lease.
	p := newBenchPacket(src.IP, dst.IP)
	src.SendPacket(p)
	d.RunFor(10 * time.Millisecond)
	// Drain in bounded virtual-time slices: a full Run() would chase the
	// lease-renewal ticker forever.
	horizon := d.Now()
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		src.SendPacket(newBenchPacket(src.IP, dst.IP))
		if d.Sim.Pending() > 4096 {
			horizon += netsim.Duration(time.Millisecond)
			d.Sim.RunUntil(horizon)
		}
	}
	d.Sim.RunUntil(horizon + netsim.Duration(time.Second))
}

// benchReaderApp is a minimal read-only app for the packet-path bench.
type benchReaderApp struct{}

func (benchReaderApp) Name() string { return "bench-reader" }
func (benchReaderApp) Key(p *redplane.Packet) (redplane.FiveTuple, bool) {
	return p.Flow(), true
}
func (benchReaderApp) Process(p *redplane.Packet, state []uint64) ([]*redplane.Packet, []uint64) {
	return []*redplane.Packet{p}, nil
}
func (benchReaderApp) InstallVia() redplane.InstallPath { return redplane.InstallRegister }

// newBenchPacket builds the packet used by the packet-path bench.
func newBenchPacket(src, dst redplane.Addr) *redplane.Packet {
	return packet.NewTCP(src, dst, 5555, 80, packet.FlagACK, 0)
}
