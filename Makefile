GO ?= go

.PHONY: all build test race check bench bench-json fmt lint chaos

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with cross-goroutine surface:
# internal/obs (registries read while the simulator writes),
# internal/core (hot-path atomic counters), and internal/runner (the
# parallel trial executor; its determinism tests double as race proof).
race:
	$(GO) test -race ./internal/obs/... ./internal/core/... ./internal/runner/...

# The CI gate: gofmt, vet, build, full tests, race pass.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# The full baseline pipeline: micro + figure benches + the
# sequential-vs-parallel wall-clock comparison, folded into a
# benchstat-friendly BENCH_<date>.json (see EXPERIMENTS.md). Set
# BASELINE=BENCH_old.json to embed deltas against a previous snapshot.
bench-json:
	sh scripts/bench.sh

fmt:
	gofmt -w .

# The CI gate plus the optional lint pass (staticcheck + govulncheck,
# installed on demand; skipped gracefully when offline).
lint:
	CI_LINT=1 sh scripts/check.sh

# A quick chaos campaign sweep: 20 seeds, both consistency modes, the
# default fault profile, fanned across every core (-parallel 0); the
# verdicts are byte-identical to a sequential run. Violations dump
# chaos-<seed>.json repros.
chaos:
	$(GO) run ./cmd/redplane-chaos -campaigns 20 -seed 1 -parallel 0
