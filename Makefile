GO ?= go

.PHONY: all build test race check bench fmt lint chaos

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with cross-goroutine surface:
# internal/obs (registries read while the simulator writes) and
# internal/core (hot-path atomic counters).
race:
	$(GO) test -race ./internal/obs/... ./internal/core/...

# The CI gate: gofmt, vet, build, full tests, race pass.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

fmt:
	gofmt -w .

# The CI gate plus the optional lint pass (staticcheck + govulncheck,
# installed on demand; skipped gracefully when offline).
lint:
	CI_LINT=1 sh scripts/check.sh

# A quick chaos campaign sweep: 20 seeds, both consistency modes, the
# default fault profile. Violations dump chaos-<seed>.json repros.
chaos:
	$(GO) run ./cmd/redplane-chaos -campaigns 20 -seed 1
