GO ?= go

.PHONY: all build test race check bench fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-detector pass over the packages with cross-goroutine surface:
# internal/obs (registries read while the simulator writes) and
# internal/core (hot-path atomic counters).
race:
	$(GO) test -race ./internal/obs/... ./internal/core/...

# The CI gate: gofmt, vet, build, full tests, race pass.
check:
	sh scripts/check.sh

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

fmt:
	gofmt -w .
