package redplane

import (
	"bytes"
	"testing"
	"time"

	"redplane/internal/apps"
	"redplane/internal/obs"
	"redplane/internal/packet"
)

// observeDeployment builds a two-switch deployment with tracing and
// sampling on and pushes n writes of one flow through it, spaced gap
// apart. Replication acks cover cumulatively, so a gap wider than the
// retransmission timeout is needed for drops to surface as retransmits
// rather than being covered by the next write's ack.
func observeDeployment(t *testing.T, seed int64, n int, gap time.Duration, loss float64) *Deployment {
	t.Helper()
	d := NewDeployment(DeploymentConfig{
		Seed:     seed,
		NewApp:   func(i int) App { return apps.SyncCounter{} },
		Ablation: AblationConfig{EmulatedRequestLoss: loss},
		Obs: ObsConfig{
			TraceEvents:  DefaultTraceEvents,
			SamplePeriod: 100 * time.Microsecond,
		},
	})
	src := d.AddClient(0, "client", MakeAddr(100, 0, 0, 1))
	dst := d.AddServer(0, "server", MakeAddr(10, 0, 0, 50))
	for i := 0; i < n; i++ {
		p := packet.NewTCP(src.IP, dst.IP, 7777, 80, packet.FlagACK, 0)
		p.Seq = uint64(i + 1)
		d.Sim.After(time.Duration(i)*gap, func() { src.SendPacket(p) })
	}
	return d
}

func TestSnapshotCountsScriptedScenario(t *testing.T) {
	const n = 20
	d := observeDeployment(t, 3, n, 50*time.Microsecond, 0)
	d.RunFor(100 * time.Millisecond)
	snap := d.Snapshot()

	// Every packet is a write: exactly one replication send each, and the
	// store applies every one. No loss was injected, so nothing
	// retransmits.
	if snap.Totals.PacketsIn != n {
		t.Errorf("PacketsIn = %d, want %d", snap.Totals.PacketsIn, n)
	}
	if snap.Totals.ReplSends != n {
		t.Errorf("ReplSends = %d, want %d", snap.Totals.ReplSends, n)
	}
	if snap.Totals.ReplApplied != n {
		t.Errorf("ReplApplied = %d, want %d", snap.Totals.ReplApplied, n)
	}
	if snap.Totals.Retransmits != 0 || snap.Totals.EmulatedDrops != 0 {
		t.Errorf("unexpected loss path: retransmits=%d drops=%d",
			snap.Totals.Retransmits, snap.Totals.EmulatedDrops)
	}
	if snap.Totals.LeaseAcquired == 0 || snap.Totals.LeaseGrants == 0 {
		t.Errorf("no lease activity: acquired=%d grants=%d",
			snap.Totals.LeaseAcquired, snap.Totals.LeaseGrants)
	}
	if len(snap.Switches) != 2 || len(snap.Store) != 3 {
		t.Fatalf("snapshot shape: %d switches, %d store servers",
			len(snap.Switches), len(snap.Store))
	}
	if snap.At != d.Now() {
		t.Errorf("snapshot time %d vs now %d", snap.At, d.Now())
	}
}

func TestSnapshotRetransmitsUnderForcedLoss(t *testing.T) {
	const n = 40
	// Space writes wider than the 1 ms retransmission timeout so each
	// dropped request must be recovered by the mirror loop, not covered
	// by the next write's cumulative ack.
	d := observeDeployment(t, 7, n, 2*time.Millisecond, 0.3)
	d.RunFor(500 * time.Millisecond)
	snap := d.Snapshot()

	if snap.Totals.EmulatedDrops == 0 {
		t.Error("forced loss dropped nothing")
	}
	if snap.Totals.Retransmits == 0 {
		t.Error("no retransmissions despite forced loss")
	}
	// Individual dropped updates may be superseded by a later write's
	// cumulative ack (full-state replication is last-writer-wins), but
	// the mirror loop guarantees the final state is durable: the store
	// holds the flow's final counter value.
	key := FiveTuple{Src: MakeAddr(100, 0, 0, 1), Dst: MakeAddr(10, 0, 0, 50),
		SrcPort: 7777, DstPort: 80, Proto: packet.ProtoTCP}
	shard := d.Cluster.ShardFor(key)
	vals, _, ok := d.Cluster.Tail(shard).Shard().State(key)
	if !ok || len(vals) == 0 || vals[0] != n {
		t.Errorf("durable state = %v (ok=%v), want counter %d at the chain tail", vals, ok, n)
	}
}

func TestTracerTimelineAndExport(t *testing.T) {
	const n = 10
	d := observeDeployment(t, 11, n, 50*time.Microsecond, 0)
	d.RunFor(50 * time.Millisecond)

	tr := d.Observe().Tracer()
	if tr == nil {
		t.Fatal("tracer not installed despite Obs.TraceEvents")
	}
	evs := tr.Events()
	if len(evs) == 0 {
		t.Fatal("no events traced")
	}
	var grants, sends, acks int
	lastT := int64(-1)
	for _, e := range evs {
		if e.T < lastT {
			t.Fatalf("events out of order: %d after %d", e.T, lastT)
		}
		lastT = e.T
		switch e.Type {
		case obs.EvLeaseGrant:
			grants++
		case obs.EvReplSend:
			sends++
			if e.Flow == "" {
				t.Error("replication event without a flow key")
			}
		case obs.EvReplAck:
			acks++
		}
	}
	if grants == 0 || sends != n || acks == 0 {
		t.Errorf("timeline grants=%d sends=%d acks=%d, want >0/%d/>0", grants, sends, acks, n)
	}

	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf, "test"); err != nil {
		t.Fatal(err)
	}
	back, err := obs.ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(evs) {
		t.Errorf("JSONL round-trip %d events, want %d", len(back), len(evs))
	}
}

func TestSampledSeriesAndDeprecatedGetters(t *testing.T) {
	const n = 20
	d := observeDeployment(t, 17, n, 50*time.Microsecond, 0)
	d.RunFor(50 * time.Millisecond)

	reg := d.Observe()
	s := reg.Series("switch/redplane-sw0/buf_bytes")
	if s == nil || len(s.V) == 0 {
		t.Fatal("buf_bytes series missing or empty")
	}
	if s.T[len(s.T)-1] <= s.T[0] {
		t.Error("series timestamps did not advance")
	}

	for i := 0; i < d.Switches(); i++ {
		sw := d.Switch(i)
		st := sw.Stats()
		if sw.BufBytes() != st.BufBytes {
			t.Errorf("sw%d BufBytes() = %d, Stats().BufBytes = %d", i, sw.BufBytes(), st.BufBytes)
		}
		if sw.Flows() != st.Flows {
			t.Errorf("sw%d Flows() = %d, Stats().Flows = %d", i, sw.Flows(), st.Flows)
		}
	}
}

func TestObsDisabledByDefault(t *testing.T) {
	d := NewDeployment(DeploymentConfig{NewApp: func(i int) App { return apps.SyncCounter{} }})
	if d.Observe() == nil {
		t.Fatal("registry must always exist")
	}
	if d.Observe().Tracer() != nil {
		t.Error("tracer on without Obs.TraceEvents")
	}
	d.RunFor(10 * time.Millisecond)
	if names := d.Observe().SeriesNames(); len(names) != 0 {
		t.Errorf("sampling ran without Obs.SamplePeriod: %v", names)
	}
}
