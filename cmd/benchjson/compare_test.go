package main

import "testing"

func doc(entries ...Entry) File { return File{Benchmarks: entries} }

func entry(name string, metrics map[string]float64) Entry {
	return Entry{Name: name, Metrics: metrics}
}

func TestHigherBetter(t *testing.T) {
	for unit, want := range map[string]bool{
		"ns/op": false, "B/op": false, "allocs/op": false,
		"writes/s": true, "ops/s": true, "MB/s": true, "speedup": true,
	} {
		if got := higherBetter(unit); got != want {
			t.Errorf("higherBetter(%q) = %v, want %v", unit, got, want)
		}
	}
}

func TestCompareNoRegression(t *testing.T) {
	old := doc(entry("BenchmarkUDPGoodput/sharded", map[string]float64{"writes/s": 100000, "ns/op": 5000}))
	fresh := doc(entry("BenchmarkUDPGoodput/sharded", map[string]float64{"writes/s": 95000, "ns/op": 5400}))
	regs, missing, compared := compareDocs(old, fresh, 10)
	if len(regs) != 0 || len(missing) != 0 {
		t.Fatalf("unexpected failures: regs=%v missing=%v", regs, missing)
	}
	if compared != 2 {
		t.Fatalf("compared = %d, want 2", compared)
	}
}

// TestCompareGoodputDrop is the local demonstration of the CI gate: an
// 11% goodput drop against a 10% threshold must fail.
func TestCompareGoodputDrop(t *testing.T) {
	old := doc(entry("BenchmarkUDPGoodput/sharded", map[string]float64{"writes/s": 100000}))
	fresh := doc(entry("BenchmarkUDPGoodput/sharded", map[string]float64{"writes/s": 89000}))
	regs, _, _ := compareDocs(old, fresh, 10)
	if len(regs) != 1 {
		t.Fatalf("regs = %v, want one goodput regression", regs)
	}
	if regs[0].Unit != "writes/s" || regs[0].Pct < 10.9 || regs[0].Pct > 11.1 {
		t.Fatalf("bad regression record: %+v", regs[0])
	}
}

func TestCompareNsOpRise(t *testing.T) {
	old := doc(entry("BenchmarkX", map[string]float64{"ns/op": 1000}))
	fresh := doc(entry("BenchmarkX", map[string]float64{"ns/op": 1150}))
	if regs, _, _ := compareDocs(old, fresh, 10); len(regs) != 1 {
		t.Fatalf("15%% ns/op rise not flagged: %v", regs)
	}
	// Improvements never fail, however large.
	fresh = doc(entry("BenchmarkX", map[string]float64{"ns/op": 100}))
	if regs, _, _ := compareDocs(old, fresh, 10); len(regs) != 0 {
		t.Fatalf("improvement flagged: %v", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	old := doc(entry("BenchmarkGone", map[string]float64{"ns/op": 1}))
	fresh := doc()
	_, missing, _ := compareDocs(old, fresh, 10)
	if len(missing) != 1 || missing[0] != "BenchmarkGone" {
		t.Fatalf("missing = %v", missing)
	}
}

func TestParsePct(t *testing.T) {
	for s, want := range map[string]float64{"10%": 10, "7.5": 7.5, " 3% ": 3} {
		got, err := parsePct(s)
		if err != nil || got != want {
			t.Errorf("parsePct(%q) = %v, %v", s, got, err)
		}
	}
	for _, s := range []string{"", "x", "-5%"} {
		if _, err := parsePct(s); err == nil {
			t.Errorf("parsePct(%q) did not fail", s)
		}
	}
}

func TestParseLineCustomUnits(t *testing.T) {
	e, ok := parseLine("BenchmarkUDPGoodput/durable/sharded 	2	 41699684 ns/op	 3200 writes/op	 76824 writes/s")
	if !ok {
		t.Fatal("line not parsed")
	}
	if e.Metrics["writes/s"] != 76824 || e.Metrics["ns/op"] != 41699684 {
		t.Fatalf("metrics = %v", e.Metrics)
	}
}
