package main

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// regression is one metric that moved the wrong way past the allowed
// threshold.
type regression struct {
	Name, Unit string
	Old, New   float64
	// Pct is how far the metric regressed: positive means worse,
	// regardless of whether the unit is higher- or lower-better.
	Pct float64
}

// higherBetter classifies a metric unit's direction: rates (anything
// per second) and speedups regress when they DROP; cost metrics
// (ns/op, B/op, allocs/op, ...) regress when they RISE.
func higherBetter(unit string) bool {
	return strings.Contains(unit, "/s") || strings.Contains(unit, "speedup")
}

// parsePct parses a threshold like "10%" or "7.5" into a percentage.
func parsePct(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimSpace(s), "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad threshold %q (want e.g. \"10%%\")", s)
	}
	return v, nil
}

// compareDocs diffs every shared benchmark metric of new against old
// and returns the metrics that regressed beyond maxRegress percent,
// plus any benchmarks that disappeared (a vanished benchmark must fail
// the gate — otherwise deleting a regressing bench "fixes" CI).
func compareDocs(oldDoc, newDoc File, maxRegress float64) (regs []regression, missing []string, compared int) {
	byName := make(map[string]Entry, len(newDoc.Benchmarks))
	for _, e := range newDoc.Benchmarks {
		byName[e.Name] = e
	}
	for _, oe := range oldDoc.Benchmarks {
		ne, ok := byName[oe.Name]
		if !ok {
			missing = append(missing, oe.Name)
			continue
		}
		units := make([]string, 0, len(oe.Metrics))
		for unit := range oe.Metrics {
			units = append(units, unit)
		}
		sort.Strings(units)
		for _, unit := range units {
			ov := oe.Metrics[unit]
			nv, ok := ne.Metrics[unit]
			if !ok || ov == 0 {
				continue
			}
			compared++
			pct := 100 * (nv - ov) / ov
			if higherBetter(unit) {
				pct = -pct
			}
			if pct > maxRegress {
				regs = append(regs, regression{Name: oe.Name, Unit: unit, Old: ov, New: nv, Pct: pct})
			}
		}
	}
	return regs, missing, compared
}

// runCompare implements `benchjson -compare old.json new.json`: exit
// status 1 when any shared metric regressed beyond the threshold or a
// baseline benchmark vanished.
func runCompare(oldPath, newPath, maxRegress string) int {
	limit, err := parsePct(maxRegress)
	if err != nil {
		fatal(err)
	}
	oldDoc, err := loadFile(oldPath)
	if err != nil {
		fatal(err)
	}
	newDoc, err := loadFile(newPath)
	if err != nil {
		fatal(err)
	}
	regs, missing, compared := compareDocs(oldDoc, newDoc, limit)
	for _, n := range missing {
		fmt.Printf("MISSING %s: in %s but not %s\n", n, oldPath, newPath)
	}
	for _, r := range regs {
		dir := "rose"
		if higherBetter(r.Unit) {
			dir = "fell"
		}
		fmt.Printf("REGRESSION %s %s %s %.4g -> %.4g (%.1f%% worse, limit %.1f%%)\n",
			r.Name, r.Unit, dir, r.Old, r.New, r.Pct, limit)
	}
	if len(regs) > 0 || len(missing) > 0 {
		fmt.Printf("FAIL: %d regression(s), %d missing benchmark(s) over %d compared metrics\n",
			len(regs), len(missing), compared)
		return 1
	}
	fmt.Printf("ok: %d metrics within %.1f%% of %s\n", compared, limit, oldPath)
	return 0
}

func loadFile(path string) (File, error) {
	m, err := loadBaseline(path)
	if err != nil {
		return File{}, err
	}
	doc := File{}
	for _, e := range m {
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	return doc, nil
}
