// Command benchjson converts `go test -bench` text output into the
// repo's BENCH_<date>.json format: one JSON document holding every
// benchmark's metrics, the raw benchstat-compatible lines, and —
// when a baseline file is given — the baseline numbers and the
// percentage deltas against them. scripts/bench.sh drives it; see
// EXPERIMENTS.md ("Benchmark baselines") for how to read and refresh
// the checked-in snapshots.
//
// Usage:
//
//	go test -bench . -benchmem ./... | benchjson -date 2026-08-06 -out BENCH_2026-08-06.json
//	benchjson -baseline BENCH_old.json -out BENCH_new.json bench1.txt bench2.txt
//	benchjson -compare -max-regress 10% old.json new.json
//
// Input is read from the file arguments, or stdin when none are given.
// Lines not starting with "Benchmark" are ignored, so raw `go test`
// output can be piped straight in. To feed the raw lines back into
// benchstat, extract them with: jq -r '.benchmarks[].raw' BENCH_x.json
//
// With -compare, the two positional arguments are prior and fresh
// BENCH_*.json files; benchjson exits 1 when any shared metric moved
// the wrong way by more than -max-regress (rates like writes/s regress
// downward, costs like ns/op regress upward), or when a baseline
// benchmark is missing from the fresh file. CI's perf gate runs this.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Entry is one benchmark result.
type Entry struct {
	// Name is the benchmark name with the trailing -<procs> suffix
	// stripped (it is recorded separately so renaming GOMAXPROCS does
	// not break baseline matching).
	Name  string `json:"name"`
	Procs int    `json:"procs,omitempty"`
	Iters int64  `json:"iters"`
	// Metrics maps unit → value, e.g. "ns/op": 89.76, "allocs/op": 0.
	Metrics map[string]float64 `json:"metrics"`
	// Raw is the original benchstat-compatible line.
	Raw string `json:"raw"`
	// Baseline and DeltaPct are filled when -baseline is given and the
	// baseline file has a benchmark with the same name: DeltaPct is
	// 100*(new-old)/old per shared metric (negative = improvement for
	// cost metrics like ns/op and allocs/op).
	Baseline map[string]float64 `json:"baseline,omitempty"`
	DeltaPct map[string]float64 `json:"delta_pct,omitempty"`
}

// File is the BENCH_<date>.json document.
type File struct {
	Date       string  `json:"date"`
	Go         string  `json:"go"`
	GOMAXPROCS int     `json:"gomaxprocs"`
	Note       string  `json:"note,omitempty"`
	Benchmarks []Entry `json:"benchmarks"`
}

var procSuffix = regexp.MustCompile(`-(\d+)$`)

func main() {
	out := flag.String("out", "", "output file (default stdout)")
	date := flag.String("date", time.Now().Format("2006-01-02"), "date stamp for the document")
	note := flag.String("note", "", "free-form note recorded in the document")
	baseline := flag.String("baseline", "", "previous BENCH_*.json to diff against")
	compare := flag.Bool("compare", false, "compare two BENCH_*.json files (old new) and gate on regressions")
	maxRegress := flag.String("max-regress", "10%", "allowed regression per metric with -compare")
	flag.Parse()

	if *compare {
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two files: old.json new.json"))
		}
		os.Exit(runCompare(flag.Arg(0), flag.Arg(1), *maxRegress))
	}

	var base map[string]Entry
	if *baseline != "" {
		b, err := loadBaseline(*baseline)
		if err != nil {
			fatal(err)
		}
		base = b
	}

	doc := File{Date: *date, Go: runtime.Version(), GOMAXPROCS: runtime.GOMAXPROCS(0), Note: *note}
	readInput(func(line string) {
		e, ok := parseLine(line)
		if !ok {
			return
		}
		if old, found := base[e.Name]; found {
			e.Baseline = old.Metrics
			e.DeltaPct = map[string]float64{}
			for unit, v := range e.Metrics {
				if ov, ok := old.Metrics[unit]; ok && ov != 0 {
					e.DeltaPct[unit] = 100 * (v - ov) / ov
				}
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
	})
	if len(doc.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines in input"))
	}

	enc, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

// readInput feeds every line of the argument files (or stdin) to fn.
func readInput(fn func(string)) {
	paths := flag.Args()
	if len(paths) == 0 {
		scan(os.Stdin, fn)
		return
	}
	for _, p := range paths {
		f, err := os.Open(p)
		if err != nil {
			fatal(err)
		}
		scan(f, fn)
		f.Close()
	}
}

func scan(r io.Reader, fn func(string)) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fn(sc.Text())
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
}

// parseLine parses one `go test -bench` result line:
//
//	BenchmarkName-8   12345   89.76 ns/op   0 B/op   0 allocs/op   1.5 extra-unit
func parseLine(line string) (Entry, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Entry{}, false
	}
	f := strings.Fields(line)
	if len(f) < 4 || len(f)%2 != 0 {
		return Entry{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Entry{}, false
	}
	e := Entry{Name: f[0], Iters: iters, Metrics: map[string]float64{}, Raw: line}
	if m := procSuffix.FindStringSubmatch(e.Name); m != nil {
		e.Procs, _ = strconv.Atoi(m[1])
		e.Name = strings.TrimSuffix(e.Name, m[0])
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Entry{}, false
		}
		e.Metrics[f[i+1]] = v
	}
	return e, true
}

func loadBaseline(path string) (map[string]Entry, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var doc File
	if err := json.Unmarshal(b, &doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	m := make(map[string]Entry, len(doc.Benchmarks))
	for _, e := range doc.Benchmarks {
		m[e.Name] = e
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
