package main

import "testing"

func TestParseLine(t *testing.T) {
	e, ok := parseLine("BenchmarkSimAtStep-8 \t 3870598\t       294.3 ns/op\t      48 B/op\t       2 allocs/op")
	if !ok {
		t.Fatal("line not parsed")
	}
	if e.Name != "BenchmarkSimAtStep" || e.Procs != 8 || e.Iters != 3870598 {
		t.Fatalf("header parsed as %+v", e)
	}
	for unit, want := range map[string]float64{"ns/op": 294.3, "B/op": 48, "allocs/op": 2} {
		if got := e.Metrics[unit]; got != want {
			t.Errorf("%s = %v, want %v", unit, got, want)
		}
	}
}

func TestParseLineCustomMetric(t *testing.T) {
	e, ok := parseLine("BenchmarkFig8LatencyNAT 	1	123456 ns/op	 14.5 p50-µs")
	if !ok {
		t.Fatal("line not parsed")
	}
	if e.Procs != 0 {
		t.Fatalf("procs = %d for suffix-less name", e.Procs)
	}
	if e.Metrics["p50-µs"] != 14.5 {
		t.Fatalf("custom metric lost: %+v", e.Metrics)
	}
}

func TestParseLineRejectsNoise(t *testing.T) {
	for _, line := range []string{
		"goos: linux",
		"PASS",
		"ok  \tredplane\t6.117s",
		"Benchmark", // header fragment, no fields
		"BenchmarkX 12 notanumber ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Errorf("parsed noise line %q", line)
		}
	}
}
