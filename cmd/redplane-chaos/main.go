// Command redplane-chaos runs seeded randomized fault campaigns against
// the RedPlane deployment and checks linearizability, bounded staleness,
// and the standing protocol invariants (single lease holder, no
// acknowledged write lost, monotonic sequence numbers, store chain
// agreement after quiescence).
//
// Usage:
//
//	redplane-chaos [-seed N] [-campaigns N] [-parallel N]
//	               [-profile default|flap|storm|coldrestart|migrate|gray|asympart|skew|wan]
//	               [-mode both|linearizable|bounded] [-engine chain|quorum]
//	               [-chains N] [-duration D] [-batch-window D] [-out dir]
//	               [-break-norevoke] [-break-skew-margin] [-v]
//	               [-cpuprofile file] [-memprofile file]
//	redplane-chaos -replay chaos-<seed>.json [-break-norevoke] [-break-skew-margin]
//
// Campaign i runs with seed+i. Each campaign is fully reproducible: the
// same seed yields a byte-identical schedule and verdict, and because
// every campaign owns a private simulator, -parallel N runs campaigns
// on N worker goroutines (0 = one per core) with verdicts reported in
// seed order — the output and exit status are byte-identical to
// -parallel 1. On violation the engine shrinks the schedule by greedy
// deletion and writes chaos-<seed>.json (the minimal replayable repro)
// plus chaos-<seed>.trace.jsonl (the obs event timeline of the minimal
// run) to -out; repro dumps happen sequentially after the parallel
// phase. Exit status is 1 if any campaign failed.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"redplane/internal/chaos"
	"redplane/internal/profiling"
	"redplane/internal/repl"
	"redplane/internal/runner"
)

func main() {
	seed := flag.Int64("seed", 1, "base seed (campaign i uses seed+i)")
	campaigns := flag.Int("campaigns", 1, "campaigns per mode")
	parallel := flag.Int("parallel", 1, "worker goroutines for campaigns (0 = one per core)")
	profile := flag.String("profile", "default", "fault-rate profile: default, flap, storm, coldrestart, migrate, gray, asympart, skew, wan")
	mode := flag.String("mode", "both", "consistency mode: both, linearizable, bounded")
	engine := flag.String("engine", "chain", "store replication engine: chain or quorum")
	chains := flag.Int("chains", 0, "store chain count (0 = classic single chain; >1 routes by the flow-space ring)")
	duration := flag.Duration("duration", 0, "active phase per campaign (0 = default 1.5s)")
	out := flag.String("out", ".", "directory for violation dumps")
	replay := flag.String("replay", "", "replay a chaos-<seed>.json repro instead of running campaigns")
	breakKnob := flag.Bool("break-norevoke", false, "intentionally break store lease revocation (harness self-test)")
	breakSkew := flag.Bool("break-skew-margin", false, "undersize the switch lease guard below the skew profile's 2ρP (harness self-test)")
	batchWindow := flag.Duration("batch-window", chaos.DefaultBatchWindow,
		"switch egress coalescing window (0 disables batching)")
	verbose := flag.Bool("v", false, "print every campaign, not just failures")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redplane-chaos:", err)
		os.Exit(1)
	}
	defer stopProf()

	if *replay != "" {
		code := replayRepro(*replay, *breakKnob, *breakSkew)
		stopProf()
		os.Exit(code)
	}

	prof, ok := chaos.Profiles[*profile]
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown profile %q\n", *profile)
		os.Exit(2)
	}
	// The default engine is recorded as "" so default-engine reports and
	// repro dumps stay byte-identical to pre-engine releases.
	eng := *engine
	if eng == repl.EngineChain {
		eng = ""
	}
	if err := (repl.Config{Engine: eng}).Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(2)
	}
	var bounded []bool
	switch *mode {
	case "both":
		bounded = []bool{false, true}
	case "linearizable":
		bounded = []bool{false}
	case "bounded":
		bounded = []bool{true}
	default:
		fmt.Fprintf(os.Stderr, "unknown mode %q\n", *mode)
		os.Exit(2)
	}

	// One unit per (seed, mode) campaign, fanned across the worker pool;
	// each campaign builds its own deployment, so they share nothing.
	// Verdicts are collected and reported in canonical seed order.
	// The flag's 0 means "batching off"; chaos.Config expresses that as a
	// negative window (its own zero selects the default-on window).
	bw := *batchWindow
	if bw == 0 {
		bw = -1
	}
	var cfgs []chaos.Config
	for i := 0; i < *campaigns; i++ {
		for _, b := range bounded {
			cfgs = append(cfgs, chaos.Config{
				Seed: *seed + int64(i), Engine: eng, Bounded: b, Chains: *chains,
				Duration: *duration, Profile: prof, BreakNoRevoke: *breakKnob,
				BreakSkewMargin: *breakSkew,
				BatchWindow:     bw,
			})
		}
	}
	units := make([]func() chaos.Result, len(cfgs))
	for i, cfg := range cfgs {
		cfg := cfg
		units[i] = func() chaos.Result { return chaos.Run(cfg) }
	}

	start := time.Now()
	results := runner.Map(runner.Workers(*parallel), units)

	failed := 0
	for i, r := range results {
		if r.Passed() {
			if *verbose {
				fmt.Printf("PASS seed=%d mode=%s profile=%s%s ops=%d faults=%d\n",
					r.Seed, r.Mode, r.Profile, engTag(r.Engine), r.Ops, len(r.Faults))
			}
			continue
		}
		failed++
		fmt.Printf("FAIL seed=%d mode=%s profile=%s%s ops=%d faults=%d shrunk=%d\n",
			r.Seed, r.Mode, r.Profile, engTag(r.Engine), r.Ops, len(r.Faults), len(r.Shrunk))
		for _, v := range r.Violations {
			fmt.Printf("  %s\n", v)
		}
		dump(cfgs[i], r, *out)
	}
	total := len(results)
	fmt.Printf("%d/%d campaigns passed in %v\n", total-failed, total, time.Since(start).Round(time.Millisecond))
	if failed > 0 {
		stopProf()
		os.Exit(1)
	}
}

// engTag renders the non-default engine as a report-line suffix; the
// chain default renders empty so default output is unchanged.
func engTag(e string) string {
	if e == "" {
		return ""
	}
	return " engine=" + e
}

// dump writes the minimal repro and its obs trace next to each other.
func dump(cfg chaos.Config, r chaos.Result, dir string) {
	path := filepath.Join(dir, fmt.Sprintf("chaos-%d.json", r.Seed))
	if err := chaos.WriteRepro(path, r); err != nil {
		fmt.Fprintf(os.Stderr, "  repro dump failed: %v\n", err)
		return
	}
	fmt.Printf("  repro: %s\n", path)

	faults := r.Shrunk
	if faults == nil {
		faults = r.Faults
	}
	tracePath := filepath.Join(dir, fmt.Sprintf("chaos-%d.trace.jsonl", r.Seed))
	f, err := os.Create(tracePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "  trace dump failed: %v\n", err)
		return
	}
	defer f.Close()
	run := fmt.Sprintf("chaos-%d-%s", r.Seed, r.Mode)
	if err := chaos.DumpTrace(cfg, faults, f, run); err != nil {
		fmt.Fprintf(os.Stderr, "  trace dump failed: %v\n", err)
		return
	}
	fmt.Printf("  trace: %s\n", tracePath)

	// Durable campaigns also get the post-mortem WAL + checkpoint state of
	// every store server, for offline inspection of what each replica
	// would recover to.
	if chaos.NeedsDurability(cfg, faults) {
		durDir := filepath.Join(dir, fmt.Sprintf("chaos-%d-durable", r.Seed))
		if err := chaos.DumpDurable(cfg, faults, durDir); err != nil {
			fmt.Fprintf(os.Stderr, "  durable dump failed: %v\n", err)
			return
		}
		fmt.Printf("  durable state: %s\n", durDir)
	}
}

func replayRepro(path string, breakKnob, breakSkew bool) int {
	rep, err := chaos.LoadRepro(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 2
	}
	cfg := rep.ReplayConfig()
	cfg.BreakNoRevoke = breakKnob
	cfg.BreakSkewMargin = breakSkew
	fmt.Printf("replaying %s: seed=%d mode=%s%s faults=%d\n",
		path, rep.Seed, rep.Mode, engTag(rep.Engine), len(rep.Faults))
	for _, f := range rep.Faults {
		fmt.Printf("  %s\n", f)
	}
	r := chaos.Replay(cfg, rep.Faults)
	if r.Passed() {
		fmt.Printf("PASS ops=%d (no violation reproduced)\n", r.Ops)
		return 0
	}
	fmt.Printf("FAIL ops=%d\n", r.Ops)
	for _, v := range r.Violations {
		fmt.Printf("  %s\n", v)
	}
	return 1
}
