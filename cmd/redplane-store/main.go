// Command redplane-store runs a RedPlane state store server over real
// UDP, speaking the protocol wire format. Chain replication works across
// processes: start the tail first, then each predecessor with -next
// pointing at its successor, and aim switches at the head.
//
//	redplane-store -listen 127.0.0.1:9502                       # tail
//	redplane-store -listen 127.0.0.1:9501 -next 127.0.0.1:9502  # middle
//	redplane-store -listen 127.0.0.1:9500 -next 127.0.0.1:9501  # head
//
// With -wal-dir the server is durable: every mutation is written to a
// segmented write-ahead log and fsynced before its acknowledgment or
// chain relay leaves the process, and checkpoints bound the log. Kill
// the process (kill -9 included) and restart it with the same -wal-dir
// and it recovers its shard from the newest checkpoint plus the WAL
// tail — no acknowledged write is lost.
//
//	redplane-store -listen 127.0.0.1:9502 -wal-dir /var/lib/redplane/tail
package main

import (
	"flag"
	"log"
	"time"

	"redplane/internal/durable"
	"redplane/internal/store"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9500", "UDP listen address")
	next := flag.String("next", "", "chain successor address (empty = tail)")
	lease := flag.Duration("lease", time.Second, "lease period")
	snapshotSlots := flag.Int("snapshot-slots", 0, "expected snapshot image size (0 = untracked)")
	maxWaiting := flag.Int("max-waiting", 0,
		"per-flow buffered lease-request queue bound (0 = default)")
	walDir := flag.String("wal-dir", "",
		"directory for the write-ahead log and checkpoints (empty = volatile, in-memory only)")
	segmentBytes := flag.Int("segment-bytes", 0,
		"WAL segment roll threshold in bytes (0 = default)")
	checkpointBytes := flag.Int("checkpoint-bytes", 0,
		"WAL growth between checkpoints in bytes (0 = default)")
	flag.Parse()

	srv, err := store.NewUDPServer(*listen, *next, store.Config{
		LeasePeriod:   *lease,
		SnapshotSlots: *snapshotSlots,
		MaxWaiting:    *maxWaiting,
	})
	if err != nil {
		log.Fatalf("redplane-store: %v", err)
	}
	if *walDir != "" {
		be, err := durable.NewDirBackend(*walDir)
		if err != nil {
			log.Fatalf("redplane-store: wal dir: %v", err)
		}
		replayed, err := srv.EnableDurability(be, store.DurabilityConfig{
			Enabled:         true,
			SegmentBytes:    *segmentBytes,
			CheckpointBytes: *checkpointBytes,
		})
		if err != nil {
			log.Fatalf("redplane-store: recover %s: %v", *walDir, err)
		}
		log.Printf("redplane-store: durable in %s (replayed %d WAL records)", *walDir, replayed)
	}
	role := "tail"
	if *next != "" {
		role = "head/middle -> " + *next
	}
	log.Printf("redplane-store: serving on %v (%s, lease %v)", srv.Addr(), role, *lease)
	if err := srv.Serve(); err != nil {
		log.Fatalf("redplane-store: %v", err)
	}
}
