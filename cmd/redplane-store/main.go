// Command redplane-store runs a RedPlane state store server over real
// UDP, speaking the protocol wire format. Chain replication works across
// processes: start the tail first, then each predecessor with -next
// pointing at its successor, and aim switches at the head.
//
//	redplane-store -listen 127.0.0.1:9502                       # tail
//	redplane-store -listen 127.0.0.1:9501 -next 127.0.0.1:9502  # middle
//	redplane-store -listen 127.0.0.1:9500 -next 127.0.0.1:9501  # head
//
// The server shards flows across -shards owner goroutines (default: one
// per core) fed by batched recvmmsg reads, and egresses through
// per-shard sendmmsg batches; -rx-batch/-tx-batch size the syscall
// batches (see DESIGN.md "Per-core sharding on the real-UDP path").
//
// With -wal-dir the server is durable: every mutation is written to a
// segmented write-ahead log and fsynced before its acknowledgment or
// chain relay leaves the process — one group-commit fsync covers a
// whole drained batch per shard (-fsync-delay widens the window).
// Kill the process (kill -9 included) and restart it with the same
// -wal-dir and it recovers its shards from the newest checkpoints plus
// the WAL tails — no acknowledged write is lost. Each shard logs into
// its own subdirectory (shard-000, ...); a SHARDS marker file pins the
// shard count, since the flow→shard hash must match across restarts.
//
//	redplane-store -listen 127.0.0.1:9502 -wal-dir /var/lib/redplane/tail
//
// With -ctl and -name the store registers with a redplane-ctl daemon
// instead of relying on static -next wiring: the daemon links the
// chain, probes liveness, splices dead members out, and resyncs this
// store when it rejoins after a crash.
//
//	redplane-store -listen 127.0.0.1:9500 -ctl 127.0.0.1:9400 -name s0
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"time"

	"redplane/internal/ctl"
	"redplane/internal/durable"
	"redplane/internal/store"
)

// shardsMarker pins the shard count a WAL directory was written with:
// restarting with a different -shards value would rehash flows onto the
// wrong WALs, so the server refuses a mismatch.
const shardsMarker = "SHARDS"

func main() {
	listen := flag.String("listen", "127.0.0.1:9500", "UDP listen address")
	next := flag.String("next", "", "chain successor address (empty = tail)")
	lease := flag.Duration("lease", time.Second, "lease period")
	snapshotSlots := flag.Int("snapshot-slots", 0, "expected snapshot image size (0 = untracked)")
	maxWaiting := flag.Int("max-waiting", 0,
		"per-flow buffered lease-request queue bound (0 = default)")
	shards := flag.Int("shards", 0, "shard-owner goroutines; flows hash to shards (0 = one per core)")
	rxBatch := flag.Int("rx-batch", 0, "datagrams per batched receive syscall (0 = default 32)")
	txBatch := flag.Int("tx-batch", 0, "datagrams per batched send syscall (0 = default 32)")
	ringSize := flag.Int("ring", 0, "receiver→shard queue capacity (0 = default 1024)")
	portableIO := flag.Bool("portable-io", false,
		"force one-datagram-per-syscall IO even where recvmmsg/sendmmsg is available")
	walDir := flag.String("wal-dir", "",
		"directory for the write-ahead log and checkpoints (empty = volatile, in-memory only)")
	fsyncDelay := flag.Duration("fsync-delay", 0,
		"group-commit fsync window: mutations arriving within it share one fsync (0 = default 20µs)")
	segmentBytes := flag.Int("segment-bytes", 0,
		"WAL segment roll threshold in bytes (0 = default)")
	checkpointBytes := flag.Int("checkpoint-bytes", 0,
		"WAL growth between checkpoints in bytes (0 = default)")
	ctlAddr := flag.String("ctl", "",
		"redplane-ctl control address to register with (empty = no control plane)")
	name := flag.String("name", "", "member name for control-plane registration")
	authToken := flag.String("auth-token", "", "shared secret for the redplane-ctl control plane")
	flag.Parse()

	if *ctlAddr != "" && *name == "" {
		log.Fatal("redplane-store: -ctl requires -name")
	}

	if *shards == 0 {
		*shards = runtime.NumCPU()
	}
	opts := []store.UDPOption{
		store.WithUDPShards(*shards),
		store.WithUDPBatch(*rxBatch, *txBatch),
	}
	if *ringSize > 0 {
		opts = append(opts, store.WithUDPRing(*ringSize))
	}
	if *portableIO {
		opts = append(opts, store.WithUDPPortableIO())
	}
	srv, err := store.NewUDPServer(*listen, *next, store.Config{
		LeasePeriod:   *lease,
		SnapshotSlots: *snapshotSlots,
		MaxWaiting:    *maxWaiting,
	}, opts...)
	if err != nil {
		log.Fatalf("redplane-store: %v", err)
	}
	if *walDir != "" {
		bes, err := shardBackends(*walDir, *shards)
		if err != nil {
			log.Fatalf("redplane-store: wal dir: %v", err)
		}
		replayed, err := srv.EnableDurabilityBackends(bes, store.DurabilityConfig{
			Enabled:         true,
			FsyncDelay:      *fsyncDelay,
			SegmentBytes:    *segmentBytes,
			CheckpointBytes: *checkpointBytes,
		})
		if err != nil {
			log.Fatalf("redplane-store: recover %s: %v", *walDir, err)
		}
		log.Printf("redplane-store: durable in %s (%d shards, replayed %d WAL records)",
			*walDir, *shards, replayed)
	}
	role := "tail"
	if *next != "" {
		role = "head/middle -> " + *next
	}
	if *ctlAddr != "" {
		agent := ctl.NewStoreAgent(*ctlAddr, *name, srv, *walDir != "")
		agent.SetAuthToken(*authToken)
		go agent.Run()
		defer agent.Close()
		log.Printf("redplane-store: registering with control plane %s as %q", *ctlAddr, *name)
	}
	log.Printf("redplane-store: serving on %v (%s, lease %v, %d shards, %s io)",
		srv.Addr(), role, *lease, srv.Shards(), srv.IOPath())
	if err := srv.Serve(); err != nil {
		log.Fatalf("redplane-store: %v", err)
	}
}

// shardBackends opens one WAL backend per shard under dir. A
// single-shard server keeps the flat pre-sharding layout so existing
// WAL directories stay recoverable; multi-shard servers use shard-NNN
// subdirectories plus the SHARDS marker.
func shardBackends(dir string, shards int) ([]durable.Backend, error) {
	marker := filepath.Join(dir, shardsMarker)
	if b, err := os.ReadFile(marker); err == nil {
		prev, perr := strconv.Atoi(strings.TrimSpace(string(b)))
		if perr != nil {
			return nil, fmt.Errorf("corrupt %s: %q", marker, b)
		}
		if prev != shards {
			return nil, fmt.Errorf("%s was written with %d shards; restart with -shards %d (rehashing flows across WALs is not supported)",
				dir, prev, prev)
		}
	} else {
		// No marker. A non-empty directory is a pre-sharding flat WAL:
		// only a single-shard server can keep using it.
		if ents, err := os.ReadDir(dir); err == nil && len(ents) > 0 && shards != 1 {
			return nil, fmt.Errorf("%s holds a pre-sharding WAL; restart with -shards 1", dir)
		}
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
		if err := os.WriteFile(marker, []byte(strconv.Itoa(shards)+"\n"), 0o644); err != nil {
			return nil, err
		}
	}
	if shards == 1 {
		be, err := durable.NewDirBackend(dir)
		if err != nil {
			return nil, err
		}
		return []durable.Backend{be}, nil
	}
	bes := make([]durable.Backend, shards)
	for i := range bes {
		be, err := durable.NewDirBackend(filepath.Join(dir, fmt.Sprintf("shard-%03d", i)))
		if err != nil {
			return nil, err
		}
		bes[i] = be
	}
	return bes, nil
}
