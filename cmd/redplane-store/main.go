// Command redplane-store runs a RedPlane state store server over real
// UDP, speaking the protocol wire format. Chain replication works across
// processes: start the tail first, then each predecessor with -next
// pointing at its successor, and aim switches at the head.
//
//	redplane-store -listen 127.0.0.1:9502                       # tail
//	redplane-store -listen 127.0.0.1:9501 -next 127.0.0.1:9502  # middle
//	redplane-store -listen 127.0.0.1:9500 -next 127.0.0.1:9501  # head
package main

import (
	"flag"
	"log"
	"time"

	"redplane/internal/store"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9500", "UDP listen address")
	next := flag.String("next", "", "chain successor address (empty = tail)")
	lease := flag.Duration("lease", time.Second, "lease period")
	snapshotSlots := flag.Int("snapshot-slots", 0, "expected snapshot image size (0 = untracked)")
	maxWaiting := flag.Int("max-waiting", 0,
		"per-flow buffered lease-request queue bound (0 = default)")
	flag.Parse()

	srv, err := store.NewUDPServer(*listen, *next, store.Config{
		LeasePeriod:   *lease,
		SnapshotSlots: *snapshotSlots,
		MaxWaiting:    *maxWaiting,
	})
	if err != nil {
		log.Fatalf("redplane-store: %v", err)
	}
	role := "tail"
	if *next != "" {
		role = "head/middle -> " + *next
	}
	log.Printf("redplane-store: serving on %v (%s, lease %v)", srv.Addr(), role, *lease)
	if err := srv.Serve(); err != nil {
		log.Fatalf("redplane-store: %v", err)
	}
}
