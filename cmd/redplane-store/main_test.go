package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestShardBackendsFreshDirWritesMarker pins first-boot behavior: the
// marker records the shard count and per-shard subdirectories appear.
func TestShardBackendsFreshDirWritesMarker(t *testing.T) {
	dir := t.TempDir()
	bes, err := shardBackends(dir, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(bes) != 4 {
		t.Fatalf("%d backends, want 4", len(bes))
	}
	b, err := os.ReadFile(filepath.Join(dir, shardsMarker))
	if err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(string(b)) != "4" {
		t.Fatalf("marker = %q, want 4", b)
	}
	if _, err := os.Stat(filepath.Join(dir, "shard-003")); err != nil {
		t.Fatalf("shard subdir missing: %v", err)
	}
}

// TestShardBackendsMatchingMarkerReopens pins the restart path: the
// same -shards value reopens cleanly.
func TestShardBackendsMatchingMarkerReopens(t *testing.T) {
	dir := t.TempDir()
	if _, err := shardBackends(dir, 2); err != nil {
		t.Fatal(err)
	}
	if _, err := shardBackends(dir, 2); err != nil {
		t.Fatalf("reopen with matching shards: %v", err)
	}
}

// TestShardBackendsRefusesShardCountChange pins the misroute guard:
// restarting a WAL directory with a different -shards value must
// refuse to start, naming the original count, because the flow→shard
// hash would land flows on the wrong WALs.
func TestShardBackendsRefusesShardCountChange(t *testing.T) {
	dir := t.TempDir()
	if _, err := shardBackends(dir, 4); err != nil {
		t.Fatal(err)
	}
	_, err := shardBackends(dir, 2)
	if err == nil {
		t.Fatal("shard-count change accepted")
	}
	if !strings.Contains(err.Error(), "4 shards") || !strings.Contains(err.Error(), "-shards 4") {
		t.Fatalf("error does not name the original count: %v", err)
	}
	// Single-shard is no exception.
	if _, err := shardBackends(dir, 1); err == nil {
		t.Fatal("shrink to 1 shard accepted")
	}
}

// TestShardBackendsRefusesCorruptMarker pins that a mangled marker is
// an error, not a silent re-initialization over existing WALs.
func TestShardBackendsRefusesCorruptMarker(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, shardsMarker), []byte("not-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := shardBackends(dir, 2)
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupt marker: err = %v", err)
	}
}

// TestShardBackendsPreShardingDir pins backward compatibility: a
// non-empty directory without a marker is a pre-sharding flat WAL —
// usable single-shard, refused otherwise.
func TestShardBackendsPreShardingDir(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "wal-000001.log"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := shardBackends(dir, 4); err == nil {
		t.Fatal("pre-sharding WAL opened multi-shard")
	} else if !strings.Contains(err.Error(), "-shards 1") {
		t.Fatalf("error does not steer to -shards 1: %v", err)
	}
	if _, err := shardBackends(dir, 1); err != nil {
		t.Fatalf("pre-sharding WAL refused single-shard: %v", err)
	}
}
