// Command redplane-bench regenerates the paper's evaluation (§7): every
// figure and table, printed as the rows/series the paper reports.
//
// Usage:
//
//	redplane-bench [-seed N] [-scale F] [-only fig8,fig12,...] [-parallel N]
//	               [-section throughput,...] [-trace file] [-stats]
//	               [-cpuprofile file] [-memprofile file]
//
// -scale multiplies workload sizes (1.0 reproduces the shipped defaults;
// smaller values give quicker, noisier runs). -only selects a subset;
// -section is an alias for -only (both select from the same section
// names, and the selections merge).
// -parallel runs the selected sections on N worker goroutines (0 = one
// per core); each section owns a private simulator, and the results are
// printed in canonical section order, so the output is byte-identical
// to -parallel 1. -trace appends every deployment's protocol event
// timeline to the given file as JSON lines (one "run" label per
// deployment); -stats prints a counter summary for each deployment
// built. -trace and -stats hook deployment construction globally, so
// they force -parallel 1. -cpuprofile/-memprofile write pprof profiles
// of the run.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"redplane"
	"redplane/internal/experiments"
	"redplane/internal/modelcheck"
	"redplane/internal/profiling"
	"redplane/internal/runner"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	only := flag.String("only", "", "comma-separated subset (fig8..fig15,table2,atscale,ablations,modelcheck,throughput,flowspace,wan)")
	sectionSel := flag.String("section", "", "alias for -only (selections merge)")
	parallel := flag.Int("parallel", 1, "worker goroutines for independent sections (0 = one per core)")
	traceFile := flag.String("trace", "", "append protocol event timelines (JSONL) to this file")
	stats := flag.Bool("stats", false, "print per-deployment counter summaries")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	flag.Parse()

	stopProf, err := profiling.Start(*cpuprofile, *memprofile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "redplane-bench:", err)
		os.Exit(1)
	}
	defer stopProf()

	workers := runner.Workers(*parallel)
	flush := func() {}
	if *traceFile != "" || *stats {
		if workers > 1 {
			fmt.Fprintln(os.Stderr, "redplane-bench: -trace/-stats observe deployments globally; forcing -parallel 1")
			workers = 1
		}
		flush = installObserver(*traceFile, *stats)
		defer flush()
	}

	sel := map[string]bool{}
	for _, s := range strings.Split(*only+","+*sectionSel, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sel[strings.ToLower(s)] = true
		}
	}
	want := func(name string) bool { return len(sel) == 0 || sel[name] }
	n := func(base int) int {
		v := int(float64(base) * *scale)
		if v < 100 {
			v = 100
		}
		return v
	}
	win := func(base time.Duration) time.Duration {
		v := time.Duration(float64(base) * *scale)
		if v < time.Millisecond {
			v = time.Millisecond
		}
		return v
	}

	// Each selected section becomes one independent work unit rendering
	// into its own buffer; the runner merges them in canonical order, so
	// stdout is byte-identical whatever the worker count.
	mcFailed := false
	type sec struct {
		name string
		run  func(w io.Writer)
	}
	all := []sec{
		{"fig8", func(w io.Writer) {
			section(w, "Figure 8 — end-to-end RTT: RedPlane-NAT vs baselines")
			res := experiments.Fig8(*seed, n(100_000))
			for _, r := range res.Rows {
				fmt.Fprintln(w, "  ", r)
			}
		}},
		{"fig9", func(w io.Writer) {
			section(w, "Figure 9 — end-to-end RTT per RedPlane-enabled application")
			res := experiments.Fig9(*seed, n(50_000))
			for _, r := range res.Rows {
				fmt.Fprintln(w, "  ", r)
			}
		}},
		{"fig10", func(w io.Writer) {
			section(w, "Figure 10 — replication bandwidth overhead")
			res := experiments.Fig10(*seed, n(50_000))
			for _, r := range res.Rows {
				fmt.Fprintln(w, "  ", r)
			}
		}},
		{"fig11", func(w io.Writer) {
			section(w, "Figure 11 — snapshot bandwidth vs frequency and sketch count")
			res := experiments.Fig11(*seed)
			for _, p := range res.Points {
				fmt.Fprintln(w, "  ", p)
			}
		}},
		{"fig12", func(w io.Writer) {
			section(w, "Figure 12 — data-plane throughput with and without RedPlane")
			res := experiments.Fig12(*seed, win(50*time.Millisecond))
			for _, r := range res.Rows {
				fmt.Fprintln(w, "  ", r)
			}
		}},
		{"fig13", func(w io.Writer) {
			section(w, "Figure 13 — key-value store throughput vs update ratio")
			res := experiments.Fig13(*seed, win(50*time.Millisecond))
			for _, p := range res.Points {
				fmt.Fprintln(w, "  ", p)
			}
		}},
		{"fig14", func(w io.Writer) {
			section(w, "Figure 14 — TCP throughput during failover and recovery")
			res := experiments.Fig14(*seed, 60*time.Second)
			fmt.Fprintf(w, "   failure at %v, recovery at %v; per-second goodput (Gbps):\n",
				res.FailAt, res.RecoverAt)
			for _, s := range res.Series {
				fmt.Fprintf(w, "   %-22s", s.Label)
				for i, v := range s.Gbps {
					if i%4 == 0 {
						fmt.Fprintf(w, " %5.2f", v)
					}
				}
				fmt.Fprintln(w)
			}
		}},
		{"fig15", func(w io.Writer) {
			section(w, "Figure 15 — switch packet buffer occupancy (request buffering)")
			res := experiments.Fig15(*seed, win(20*time.Millisecond))
			for _, p := range res.Points {
				fmt.Fprintln(w, "  ", p)
			}
		}},
		{"throughput", func(w io.Writer) {
			section(w, "Sustained throughput — open-loop write path vs egress batch window")
			res := experiments.Throughput(*seed, win(20*time.Millisecond))
			fmt.Fprintf(w, "   offered load %.3f Mpps (Sync-Counter, store service %v)\n",
				res.OfferedMpps, time.Microsecond)
			for _, p := range res.Points {
				fmt.Fprintln(w, "  ", p)
			}
		}},
		{"flowspace", func(w io.Writer) {
			section(w, "Flow-space sharding — weak-scaling sweep over the chain count")
			res := experiments.FlowspaceScale(*seed, win(6*time.Millisecond))
			for _, r := range res.Rows {
				fmt.Fprintln(w, "  ", r)
			}
			fmt.Fprintf(w, "   scale-up %.2fx over %d chains, per-chain flatness %.1f%%\n",
				res.ScaleUp, res.Rows[len(res.Rows)-1].Chains, res.Flatness*100)
		}},
		{"wan", func(w io.Writer) {
			section(w, "WAN consistency — linearizable vs bounded across datacenters")
			res := experiments.WANConsistency(*seed, win(400*time.Millisecond))
			for _, r := range res.Rows {
				fmt.Fprintln(w, "  ", r)
			}
			fmt.Fprintf(w, "   bounded/linearizable goodput at 40ms RTT: %.0fx\n", res.SpeedupAt40)
		}},
		{"table2", func(w io.Writer) {
			section(w, "Table 2 — additional switch ASIC resource usage (100k flows)")
			res := experiments.Table2(0)
			for _, r := range res.Rows {
				fmt.Fprintln(w, "  ", r)
			}
		}},
		{"atscale", func(w io.Writer) {
			section(w, "§7.2 at-scale analysis — analytical bandwidth overhead model")
			for _, m := range experiments.Fig10AtScale(0).Rows {
				fmt.Fprintln(w, "  ", m)
			}
		}},
		{"ablations", func(w io.Writer) {
			section(w, "Ablations — the design choices, quantified (DESIGN.md §5)")
			for _, a := range experiments.Ablations(*seed) {
				fmt.Fprintln(w, "  ", a)
			}
		}},
		{"modelcheck", func(w io.Writer) {
			section(w, "Appendix C — protocol model check")
			res := modelcheck.Run(modelcheck.DefaultConfig())
			fmt.Fprintf(w, "   states=%d transitions=%d depth=%d violations=%d deadlocks=%d\n",
				res.States, res.Transitions, res.Depth, len(res.Violations), res.Deadlocks)
			if !res.OK() {
				mcFailed = true // read only after the runner joins
			}
		}},
	}

	var units []func() string
	for _, s := range all {
		if !want(s.name) {
			continue
		}
		run := s.run
		units = append(units, func() string {
			var b strings.Builder
			run(&b)
			return b.String()
		})
	}
	for _, out := range runner.Map(workers, units) {
		fmt.Print(out)
	}
	if mcFailed {
		fmt.Fprintln(os.Stderr, "MODEL CHECK FAILED")
		flush()
		stopProf()
		os.Exit(1)
	}
}

func section(w io.Writer, title string) {
	fmt.Fprintf(w, "\n=== %s ===\n", title)
}

// installObserver hooks deployment construction so -trace and -stats see
// every deployment the experiments build. A deployment's counters and
// trace are only final once the experiment finished driving it, which is
// the moment the *next* deployment appears (or the process exits) — so
// each flush is one deployment behind, and the returned func flushes the
// last one. The hook is process-global state, which is why -trace/-stats
// force sequential execution.
func installObserver(traceFile string, stats bool) (flush func()) {
	var out *os.File
	if traceFile != "" {
		var err error
		out, err = os.Create(traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "redplane-bench:", err)
			os.Exit(1)
		}
	}
	var prev *redplane.Deployment
	runID := 0
	emit := func() {
		if prev == nil {
			return
		}
		if out != nil {
			if tr := prev.Observe().Tracer(); tr != nil {
				if err := tr.WriteJSONL(out, fmt.Sprintf("run%d", runID)); err != nil {
					fmt.Fprintln(os.Stderr, "redplane-bench: trace:", err)
				}
			}
		}
		if stats {
			t := prev.Snapshot().Totals
			fmt.Fprintf(os.Stderr,
				"[stats run%d t=%.3fs] in=%d out=%d repl=%d retx=%d drops=%d "+
					"lease_acq=%d grants=%d renews=%d migr=%d applied=%d stale=%d shed=%d\n",
				runID, prev.Now().Seconds(), t.PacketsIn, t.PacketsOut, t.ReplSends,
				t.Retransmits, t.EmulatedDrops, t.LeaseAcquired, t.LeaseGrants,
				t.LeaseRenewals, t.LeaseMigrated, t.ReplApplied, t.ReplStale,
				t.StoreDroppedRequests)
		}
		prev = nil
		runID++
	}
	var forced redplane.ObsConfig
	if traceFile != "" {
		forced.TraceEvents = redplane.DefaultTraceEvents
	}
	redplane.SetDeploymentObserver(forced, func(d *redplane.Deployment) {
		emit()
		prev = d
	})
	return func() {
		emit()
		if out != nil {
			out.Close()
		}
	}
}
