// Command redplane-bench regenerates the paper's evaluation (§7): every
// figure and table, printed as the rows/series the paper reports.
//
// Usage:
//
//	redplane-bench [-seed N] [-scale F] [-only fig8,fig12,...] [-trace file] [-stats]
//
// -scale multiplies workload sizes (1.0 reproduces the shipped defaults;
// smaller values give quicker, noisier runs). -only selects a subset.
// -trace appends every deployment's protocol event timeline to the given
// file as JSON lines (one "run" label per deployment); -stats prints a
// counter summary for each deployment built.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"redplane"
	"redplane/internal/experiments"
	"redplane/internal/modelcheck"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	scale := flag.Float64("scale", 1.0, "workload scale factor")
	only := flag.String("only", "", "comma-separated subset (fig8..fig15,table2,atscale,ablations,modelcheck)")
	traceFile := flag.String("trace", "", "append protocol event timelines (JSONL) to this file")
	stats := flag.Bool("stats", false, "print per-deployment counter summaries")
	flag.Parse()

	flush := func() {}
	if *traceFile != "" || *stats {
		flush = installObserver(*traceFile, *stats)
		defer flush()
	}

	sel := map[string]bool{}
	for _, s := range strings.Split(*only, ",") {
		if s = strings.TrimSpace(s); s != "" {
			sel[strings.ToLower(s)] = true
		}
	}
	want := func(name string) bool { return len(sel) == 0 || sel[name] }
	n := func(base int) int {
		v := int(float64(base) * *scale)
		if v < 100 {
			v = 100
		}
		return v
	}
	win := func(base time.Duration) time.Duration {
		v := time.Duration(float64(base) * *scale)
		if v < time.Millisecond {
			v = time.Millisecond
		}
		return v
	}

	if want("fig8") {
		section("Figure 8 — end-to-end RTT: RedPlane-NAT vs baselines")
		res := experiments.Fig8(*seed, n(100_000))
		for _, r := range res.Rows {
			fmt.Println("  ", r)
		}
	}
	if want("fig9") {
		section("Figure 9 — end-to-end RTT per RedPlane-enabled application")
		res := experiments.Fig9(*seed, n(50_000))
		for _, r := range res.Rows {
			fmt.Println("  ", r)
		}
	}
	if want("fig10") {
		section("Figure 10 — replication bandwidth overhead")
		res := experiments.Fig10(*seed, n(50_000))
		for _, r := range res.Rows {
			fmt.Println("  ", r)
		}
	}
	if want("fig11") {
		section("Figure 11 — snapshot bandwidth vs frequency and sketch count")
		res := experiments.Fig11(*seed)
		for _, p := range res.Points {
			fmt.Println("  ", p)
		}
	}
	if want("fig12") {
		section("Figure 12 — data-plane throughput with and without RedPlane")
		res := experiments.Fig12(*seed, win(50*time.Millisecond))
		for _, r := range res.Rows {
			fmt.Println("  ", r)
		}
	}
	if want("fig13") {
		section("Figure 13 — key-value store throughput vs update ratio")
		res := experiments.Fig13(*seed, win(50*time.Millisecond))
		for _, p := range res.Points {
			fmt.Println("  ", p)
		}
	}
	if want("fig14") {
		section("Figure 14 — TCP throughput during failover and recovery")
		res := experiments.Fig14(*seed, 60*time.Second)
		fmt.Printf("   failure at %v, recovery at %v; per-second goodput (Gbps):\n",
			res.FailAt, res.RecoverAt)
		for _, s := range res.Series {
			fmt.Printf("   %-22s", s.Label)
			for i, v := range s.Gbps {
				if i%4 == 0 {
					fmt.Printf(" %5.2f", v)
				}
			}
			fmt.Println()
		}
	}
	if want("fig15") {
		section("Figure 15 — switch packet buffer occupancy (request buffering)")
		res := experiments.Fig15(*seed, win(20*time.Millisecond))
		for _, p := range res.Points {
			fmt.Println("  ", p)
		}
	}
	if want("table2") {
		section("Table 2 — additional switch ASIC resource usage (100k flows)")
		res := experiments.Table2(0)
		for _, r := range res.Rows {
			fmt.Println("  ", r)
		}
	}
	if want("atscale") {
		section("§7.2 at-scale analysis — analytical bandwidth overhead model")
		for _, m := range experiments.Fig10AtScale(0).Rows {
			fmt.Println("  ", m)
		}
	}
	if want("ablations") {
		section("Ablations — the design choices, quantified (DESIGN.md §5)")
		for _, a := range experiments.Ablations(*seed) {
			fmt.Println("  ", a)
		}
	}
	if want("modelcheck") {
		section("Appendix C — protocol model check")
		res := modelcheck.Run(modelcheck.DefaultConfig())
		fmt.Printf("   states=%d transitions=%d depth=%d violations=%d deadlocks=%d\n",
			res.States, res.Transitions, res.Depth, len(res.Violations), res.Deadlocks)
		if !res.OK() {
			fmt.Fprintln(os.Stderr, "MODEL CHECK FAILED")
			flush()
			os.Exit(1)
		}
	}
}

func section(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

// installObserver hooks deployment construction so -trace and -stats see
// every deployment the experiments build. A deployment's counters and
// trace are only final once the experiment finished driving it, which is
// the moment the *next* deployment appears (or the process exits) — so
// each flush is one deployment behind, and the returned func flushes the
// last one.
func installObserver(traceFile string, stats bool) (flush func()) {
	var out *os.File
	if traceFile != "" {
		var err error
		out, err = os.Create(traceFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "redplane-bench:", err)
			os.Exit(1)
		}
	}
	var prev *redplane.Deployment
	runID := 0
	emit := func() {
		if prev == nil {
			return
		}
		if out != nil {
			if tr := prev.Observe().Tracer(); tr != nil {
				if err := tr.WriteJSONL(out, fmt.Sprintf("run%d", runID)); err != nil {
					fmt.Fprintln(os.Stderr, "redplane-bench: trace:", err)
				}
			}
		}
		if stats {
			t := prev.Snapshot().Totals
			fmt.Fprintf(os.Stderr,
				"[stats run%d t=%.3fs] in=%d out=%d repl=%d retx=%d drops=%d "+
					"lease_acq=%d grants=%d renews=%d migr=%d applied=%d stale=%d shed=%d\n",
				runID, prev.Now().Seconds(), t.PacketsIn, t.PacketsOut, t.ReplSends,
				t.Retransmits, t.EmulatedDrops, t.LeaseAcquired, t.LeaseGrants,
				t.LeaseRenewals, t.LeaseMigrated, t.ReplApplied, t.ReplStale,
				t.StoreDroppedRequests)
		}
		prev = nil
		runID++
	}
	var forced redplane.ObsConfig
	if traceFile != "" {
		forced.TraceEvents = redplane.DefaultTraceEvents
	}
	redplane.SetDeploymentObserver(forced, func(d *redplane.Deployment) {
		emit()
		prev = d
	})
	return func() {
		emit()
		if out != nil {
			out.Close()
		}
	}
}
