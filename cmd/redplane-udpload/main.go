// Command redplane-udpload drives a real-UDP store server with a
// windowed replication sweep and reports acknowledged goodput: every
// counted write was leased, sequenced, and cumulatively acknowledged by
// the chain tail. The generator uses the same batched recvmmsg/sendmmsg
// layer as the server (-portable-io forces the fallback), so it can
// saturate a sharded server from one host.
//
//	redplane-udpload -addr 127.0.0.1:9500 -flows 64 -writes 2000 -batch 16
//
// -zipf S skews the per-flow write allocation (flow rank r weighs
// 1/r^S; the Flows*Writes total is preserved), modeling heavy-hitter
// flow popularity; with -shards N the report adds the per-shard write
// counts and their max/mean goodput spread, showing how lopsided the
// skew leaves a statically-hashed server.
//
// With -verify it instead re-leases each flow with its original switch
// ID and checks the store still reports the sweep's final watermark —
// the post-restart assertion of the CI kill -9 smoke. -verify knows the
// -zipf allocation (it is deterministic), so skewed sweeps verify too.
//
// Before traffic the generator performs the hello handshake against
// the target (-no-hello skips it): it refuses a mid-chain replica and
// a -shards value the server contradicts, and with -shards 0 adopts
// the server's actual count for the spread report. With -ctl the
// chain-head address is resolved from a redplane-ctl daemon's routing
// table instead of -addr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"redplane/internal/ctl"
	"redplane/internal/store"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:9500", "store chain head address")
	senders := flag.Int("senders", 1, "sender goroutines (each owns a socket)")
	flows := flag.Int("flows", 32, "distinct five-tuple flows")
	writes := flag.Int("writes", 100, "replication writes per flow")
	batch := flag.Int("batch", 16, "messages per request datagram")
	syscallBatch := flag.Int("syscall-batch", 0, "datagrams per client syscall batch (0 = max(batch, 32))")
	window := flag.Int("window", 0, "per-flow unacked bound (0 = 4*batch)")
	stall := flag.Duration("stall", 100*time.Millisecond, "retransmission timer")
	timeout := flag.Duration("timeout", 60*time.Second, "overall sweep deadline")
	portable := flag.Bool("portable-io", false, "force one-datagram-per-syscall client IO")
	zipf := flag.Float64("zipf", 0, "Zipf skew exponent for the per-flow write allocation (0 = uniform)")
	shards := flag.Int("shards", 0, "server shard count, for the per-shard goodput spread report (0 = omit)")
	verify := flag.Bool("verify", false, "verify a prior sweep's watermarks instead of sweeping")
	jsonOut := flag.String("json", "", "write the sweep result as JSON to this file (- = stdout)")
	ctlAddr := flag.String("ctl", "", "redplane-ctl address to resolve the chain head from (overrides -addr)")
	noHello := flag.Bool("no-hello", false, "skip the deployment handshake preflight")
	authToken := flag.String("auth-token", "", "shared secret for the redplane-ctl control plane")
	flag.Parse()

	if *ctlAddr != "" {
		r, err := ctl.FetchRouting(*ctlAddr, *authToken, 0)
		if err != nil {
			log.Fatalf("redplane-udpload: %v", err)
		}
		if len(r.Heads) != 1 {
			log.Fatalf("redplane-udpload: %d chains in routing epoch %d; the sweep drives one chain — pass -addr with the head to target", len(r.Heads), r.Epoch)
		}
		if r.Heads[0] == "" {
			log.Fatalf("redplane-udpload: routing epoch %d has no live head", r.Epoch)
		}
		*addr = r.Heads[0]
		log.Printf("redplane-udpload: routing epoch %d, head %s", r.Epoch, *addr)
	}
	if !*noHello {
		// Fail fast on a misconfigured target: a mid-chain replica would
		// silently drop (or worse, misorder) direct writes, and a shard
		// mismatch skews the flow spread the report assumes.
		hi, err := store.VerifyDeployTarget(*addr, *shards, 0)
		if err != nil {
			log.Fatalf("redplane-udpload: %v", err)
		}
		if *shards == 0 {
			// Adopt the server's count so the per-shard spread report and
			// the flow→shard placement match reality by default.
			*shards = hi.Shards
		}
	}

	cfg := store.SweepConfig{
		Addr: *addr, Senders: *senders, Flows: *flows, Writes: *writes,
		Batch: *batch, SyscallBatch: *syscallBatch, Window: *window,
		Stall: *stall, Timeout: *timeout, Portable: *portable,
		Zipf: *zipf, ShardCount: *shards,
	}
	if *verify {
		ok, err := store.VerifySweep(cfg)
		if err != nil {
			log.Fatalf("redplane-udpload: verify: %v (%d/%d flows ok)", err, ok, *flows)
		}
		if ok != *flows {
			log.Fatalf("redplane-udpload: verify: only %d/%d flows held their watermark", ok, *flows)
		}
		fmt.Printf("verify ok: %d/%d flows at watermark %d\n", ok, *flows, *writes)
		return
	}
	res, err := store.RunSweep(cfg)
	if err != nil {
		log.Fatalf("redplane-udpload: %v", err)
	}
	fmt.Printf("processed %d writes (watermark %d/%d) over %d flows in %v — %.0f writes/s (sent %d dgrams, %d retrans)\n",
		res.ProcessedWrites, res.AckedWrites, res.Flows*res.Writes, res.Flows,
		res.Elapsed.Round(time.Millisecond), res.GoodputPps, res.SentDgrams, res.Retrans)
	if len(res.PerShardProcessed) > 0 {
		fmt.Printf("per-shard writes %v — spread max/mean %.2f\n", res.PerShardProcessed, res.ShardSpread)
	}
	if *jsonOut != "" {
		b, _ := json.MarshalIndent(res, "", "  ")
		b = append(b, '\n')
		if *jsonOut == "-" {
			os.Stdout.Write(b)
		} else if err := os.WriteFile(*jsonOut, b, 0o644); err != nil {
			log.Fatalf("redplane-udpload: %v", err)
		}
	}
	if !res.Complete {
		os.Exit(1)
	}
}
