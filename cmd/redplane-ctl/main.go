// Command redplane-ctl is the RedPlane control-plane daemon for real
// deployments. Store processes started with -ctl/-name dial it and
// register; the daemon links them into chains (tail-first set-next
// rollouts), probes liveness, splices dead replicas out under a new
// view number, resyncs and relinks replicas that come back, and
// publishes epoch-numbered routing tables (chain heads plus the
// flow-space ring parameters) to switches.
//
//	redplane-ctl -listen 127.0.0.1:9400 -http 127.0.0.1:9401 \
//	    -chains "s0,s1,s2"
//
// -chains names the expected members per chain, head first;
// semicolons separate chains ("s0,s1,s2;t0,t1,t2"). The HTTP endpoint
// serves /status (JSON membership and routing snapshot) and /metrics
// (Prometheus text exposition: the daemon's ctl/* counters plus every
// store's last-probed counters labeled by member).
package main

import (
	"flag"
	"log"
	"net/http"
	"strings"
	"time"

	"redplane/internal/ctl"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:9400", "control listen address (TCP)")
	httpAddr := flag.String("http", "", "HTTP address for /status and /metrics (empty = disabled)")
	chains := flag.String("chains", "",
		`expected member names per chain, head first: "s0,s1,s2;t0,t1,t2"`)
	probe := flag.Duration("probe-interval", 250*time.Millisecond, "liveness ping cadence")
	vnodes := flag.Int("vnodes", 32, "flow-space ring vnodes per chain (shipped to switches)")
	authToken := flag.String("auth-token", "",
		"shared secret required on every member/switch registration (empty = no auth)")
	flag.Parse()

	var cfg [][]string
	for _, ch := range strings.Split(*chains, ";") {
		var names []string
		for _, n := range strings.Split(ch, ",") {
			if n = strings.TrimSpace(n); n != "" {
				names = append(names, n)
			}
		}
		if len(names) > 0 {
			cfg = append(cfg, names)
		}
	}
	d, err := ctl.NewDaemon(*listen, ctl.Options{
		Chains: cfg, Vnodes: *vnodes, ProbeInterval: *probe, AuthToken: *authToken,
	})
	if err != nil {
		log.Fatalf("redplane-ctl: %v", err)
	}
	if *httpAddr != "" {
		go func() {
			log.Printf("redplane-ctl: http on %s (/status, /metrics)", *httpAddr)
			if err := http.ListenAndServe(*httpAddr, d.HTTPHandler()); err != nil {
				log.Fatalf("redplane-ctl: http: %v", err)
			}
		}()
	}
	log.Printf("redplane-ctl: serving on %v (%d chains, probe %v)",
		d.Addr(), len(cfg), *probe)
	if err := d.Serve(); err != nil {
		log.Fatalf("redplane-ctl: %v", err)
	}
}
