// Command redplane-switch exercises a running redplane-store over real
// UDP as a RedPlane switch would: it acquires leases, replicates
// sequenced state updates, renews, and reports per-request latency. Use
// it to validate a store deployment end-to-end.
//
//	redplane-switch -store 127.0.0.1:9500 -id 1 -flows 100 -writes 50
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"redplane/internal/packet"
	"redplane/internal/store"
	"redplane/internal/wire"
)

func main() {
	addr := flag.String("store", "127.0.0.1:9500", "store chain head address")
	id := flag.Int("id", 1, "switch ID")
	flows := flag.Int("flows", 10, "number of flows to drive")
	writes := flag.Int("writes", 20, "state updates per flow")
	flag.Parse()

	c, err := store.DialUDP(*addr, *id)
	if err != nil {
		log.Fatalf("redplane-switch: %v", err)
	}
	defer c.Close()

	var lats []time.Duration
	do := func(m *wire.Message) *wire.Message {
		start := time.Now()
		ack, err := c.Request(m)
		if err != nil {
			log.Fatalf("redplane-switch: %v request: %v", m.Type, err)
		}
		lats = append(lats, time.Since(start))
		return ack
	}

	start := time.Now()
	for f := 0; f < *flows; f++ {
		key := packet.FiveTuple{
			Src: packet.MakeAddr(10, 0, 0, 1), Dst: packet.MakeAddr(100, 0, 0, 1),
			SrcPort: uint16(1000 + f), DstPort: 80, Proto: packet.ProtoTCP,
		}
		ack := do(&wire.Message{Type: wire.MsgLeaseNew, Key: key})
		if ack.Type == wire.MsgLeaseReject {
			log.Fatalf("redplane-switch: flow %d lease rejected (another switch owns it)", f)
		}
		seq := ack.Seq
		for w := 1; w <= *writes; w++ {
			seq++
			wack := do(&wire.Message{Type: wire.MsgRepl, Key: key, Seq: seq,
				Vals: []uint64{uint64(w)}})
			if wack.Type != wire.MsgReplAck || wack.Seq < seq {
				log.Fatalf("redplane-switch: flow %d write %d: unexpected ack %v seq=%d",
					f, w, wack.Type, wack.Seq)
			}
		}
		do(&wire.Message{Type: wire.MsgLeaseRenew, Key: key})
	}
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		return lats[int(p*float64(len(lats)-1))]
	}
	total := *flows * (*writes + 2)
	fmt.Printf("redplane-switch: %d requests in %v (%.0f req/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("latency: p50=%v p90=%v p99=%v\n", pct(0.50), pct(0.90), pct(0.99))
	fmt.Println("all leases acquired, all writes acknowledged in order")
}
