// Command redplane-switch exercises a running redplane-store over real
// UDP as a RedPlane switch would: it acquires leases, replicates
// sequenced state updates, renews, and reports per-request latency. Use
// it to validate a store deployment end-to-end.
//
//	redplane-switch -store 127.0.0.1:9500 -id 1 -flows 100 -writes 50 [-trace file] [-stats]
//
// Before any traffic it performs the hello handshake against each
// target, refusing to run against a mid-chain replica or (with
// -expect-shards) a server whose shard count differs from the
// assumption — both previously silent misroutes. With -ctl it fetches
// the chain-head routing table from a redplane-ctl daemon instead of
// using a static -store address, and spreads flows across chains with
// the same flow-space ring the daemon uses.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"redplane/internal/ctl"
	"redplane/internal/obs"
	"redplane/internal/packet"
	"redplane/internal/store"
	"redplane/internal/wire"
)

func main() {
	addr := flag.String("store", "127.0.0.1:9500", "store chain head address")
	ctlAddr := flag.String("ctl", "", "redplane-ctl address to fetch routing from (overrides -store)")
	expectShards := flag.Int("expect-shards", 0,
		"fail unless the store serves exactly this many shards (0 = accept any)")
	id := flag.Int("id", 1, "switch ID")
	flows := flag.Int("flows", 10, "number of flows to drive")
	writes := flag.Int("writes", 20, "state updates per flow")
	batch := flag.Int("batch", 1, "writes packed per batch datagram (1 = one request per datagram)")
	traceFile := flag.String("trace", "", "write the request/ack event timeline (JSONL) to this file")
	stats := flag.Bool("stats", false, "print the request counter summary")
	authToken := flag.String("auth-token", "", "shared secret for the redplane-ctl control plane")
	flag.Parse()

	var router *ctl.Router
	if *ctlAddr != "" {
		r, err := ctl.FetchRouting(*ctlAddr, *authToken, 0)
		if err != nil {
			log.Fatalf("redplane-switch: %v", err)
		}
		router = r
		log.Printf("redplane-switch: routing epoch %d, heads %v", r.Epoch, r.Heads)
	}
	// One client per distinct head, hello-verified on first use: a
	// mid-chain target or shard-count mismatch fails here, before any
	// state-mutating traffic escapes.
	clients := map[string]*store.UDPClient{}
	clientFor := func(key packet.FiveTuple) *store.UDPClient {
		a := *addr
		if router != nil {
			a = router.HeadFor(key)
		}
		if a == "" {
			log.Fatalf("redplane-switch: no live head for flow %v", key)
		}
		if c, ok := clients[a]; ok {
			return c
		}
		if _, err := store.VerifyDeployTarget(a, *expectShards, 0); err != nil {
			log.Fatalf("redplane-switch: %v", err)
		}
		c, err := store.DialUDP(a, *id)
		if err != nil {
			log.Fatalf("redplane-switch: %v", err)
		}
		clients[a] = c
		return c
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	// The same observability layer the simulator uses, against the real
	// store: events are stamped with wall-clock nanoseconds since start.
	reg := obs.NewRegistry()
	var tr *obs.Tracer
	if *traceFile != "" {
		tr = obs.NewTracer(1 << 20)
	}
	met := reg.NS("switch/udp")
	leases := met.Counter("lease_acquired")
	repls := met.Counter("repl_sends")
	renews := met.Counter("lease_renewals")
	comp := fmt.Sprintf("udp-switch-%d", *id)

	start := time.Now()
	var lats []time.Duration
	do := func(c *store.UDPClient, m *wire.Message) *wire.Message {
		reqStart := time.Now()
		ack, err := c.Request(m)
		if err != nil {
			log.Fatalf("redplane-switch: %v request: %v", m.Type, err)
		}
		lats = append(lats, time.Since(reqStart))
		if tr.Active() {
			var et obs.EventType
			switch m.Type {
			case wire.MsgLeaseNew:
				et = obs.EvLeaseGrant
			case wire.MsgRepl:
				et = obs.EvReplSend
			default:
				et = obs.EvLeaseRenew
			}
			tr.Emit(obs.Event{T: int64(reqStart.Sub(start)), Type: et,
				Comp: comp, Flow: m.Key.String(), Seq: m.Seq})
			tr.Emit(obs.Event{T: int64(time.Since(start)), Type: obs.EvReplAck,
				Comp: comp, Flow: m.Key.String(), Seq: ack.Seq})
		}
		switch m.Type {
		case wire.MsgLeaseNew:
			leases.Inc()
		case wire.MsgRepl:
			repls.Inc()
		case wire.MsgLeaseRenew:
			renews.Inc()
		}
		return ack
	}

	for f := 0; f < *flows; f++ {
		key := packet.FiveTuple{
			Src: packet.MakeAddr(10, 0, 0, 1), Dst: packet.MakeAddr(100, 0, 0, 1),
			SrcPort: uint16(1000 + f), DstPort: 80, Proto: packet.ProtoTCP,
		}
		c := clientFor(key)
		ack := do(c, &wire.Message{Type: wire.MsgLeaseNew, Key: key})
		if ack.Type == wire.MsgLeaseReject {
			log.Fatalf("redplane-switch: flow %d lease rejected (another switch owns it)", f)
		}
		seq := ack.Seq
		for w := 1; w <= *writes; w += *batch {
			n := *batch
			if w+n-1 > *writes {
				n = *writes - w + 1
			}
			msgs := make([]*wire.Message, n)
			for i := range msgs {
				seq++
				msgs[i] = &wire.Message{Type: wire.MsgRepl, Key: key, Seq: seq,
					Vals: []uint64{uint64(w + i)}}
			}
			if n == 1 {
				wack := do(c, msgs[0])
				if wack.Type != wire.MsgReplAck || wack.Seq < msgs[0].Seq {
					log.Fatalf("redplane-switch: flow %d write %d: unexpected ack %v seq=%d",
						f, w, wack.Type, wack.Seq)
				}
				continue
			}
			reqStart := time.Now()
			acks, err := c.RequestBatch(msgs)
			if err != nil {
				log.Fatalf("redplane-switch: flow %d batch at write %d: %v", f, w, err)
			}
			lats = append(lats, time.Since(reqStart))
			repls.Add(uint64(n))
			for i, wack := range acks {
				if wack.Type != wire.MsgReplAck || wack.Seq < msgs[i].Seq {
					log.Fatalf("redplane-switch: flow %d write %d: unexpected ack %v seq=%d",
						f, w+i, wack.Type, wack.Seq)
				}
			}
			if tr.Active() {
				tr.Emit(obs.Event{T: int64(reqStart.Sub(start)), Type: obs.EvBatchFlush,
					Comp: comp, Flow: key.String(), Seq: seq, V: int64(n)})
			}
		}
		do(c, &wire.Message{Type: wire.MsgLeaseRenew, Key: key})
	}
	elapsed := time.Since(start)

	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) time.Duration {
		return lats[int(p*float64(len(lats)-1))]
	}
	total := *flows * (*writes + 2)
	fmt.Printf("redplane-switch: %d requests in %v (%.0f req/s)\n",
		total, elapsed.Round(time.Millisecond), float64(total)/elapsed.Seconds())
	fmt.Printf("latency: p50=%v p90=%v p99=%v\n", pct(0.50), pct(0.90), pct(0.99))
	fmt.Println("all leases acquired, all writes acknowledged in order")

	if *stats {
		fmt.Fprintf(os.Stderr, "[stats] lease_acquired=%d repl_sends=%d lease_renewals=%d\n",
			leases.Value(), repls.Value(), renews.Value())
	}
	if *traceFile != "" {
		out, err := os.Create(*traceFile)
		if err != nil {
			log.Fatalf("redplane-switch: trace: %v", err)
		}
		if err := tr.WriteJSONL(out, fmt.Sprintf("udp-switch-%d", *id)); err != nil {
			log.Fatalf("redplane-switch: trace: %v", err)
		}
		if err := out.Close(); err != nil {
			log.Fatalf("redplane-switch: trace: %v", err)
		}
	}
}
