// Command redplane-modelcheck explicitly model-checks the RedPlane
// replication protocol — the Go analogue of the paper's TLA+ specification
// (Appendix C). It explores every interleaving of the store, switch,
// lease-timer, and packet-generator processes within the configured
// bounds and checks the spec's invariants on each reachable state.
package main

import (
	"flag"
	"fmt"
	"os"

	"redplane/internal/modelcheck"
)

func main() {
	switches := flag.Int("switches", 2, "number of switch processes (max 3)")
	lease := flag.Int("lease", 2, "lease period in timer ticks")
	pkts := flag.Int("pkts", 3, "packet generator budget")
	maxStates := flag.Int("max-states", 0, "state bound (0 = 5M)")
	flag.Parse()

	cfg := modelcheck.Config{
		Switches: *switches, LeasePeriod: *lease, TotalPkts: *pkts,
		MaxStates: *maxStates,
	}
	fmt.Printf("model: %d switches, lease period %d, %d packets\n",
		cfg.Switches, cfg.LeasePeriod, cfg.TotalPkts)
	res := modelcheck.Run(cfg)
	fmt.Printf("explored %d states, %d transitions, depth %d\n",
		res.States, res.Transitions, res.Depth)
	if res.Truncated {
		fmt.Println("NOTE: exploration truncated at the state bound")
	}
	fmt.Println("invariants checked: SingleOwnerInvariant, AtLeastOneAliveSwitch, WriteAckMatchesSeq")
	if res.Deadlocks > 0 {
		fmt.Printf("DEADLOCKS: %d non-terminal states with no enabled transition\n", res.Deadlocks)
	}
	for _, v := range res.Violations {
		fmt.Printf("VIOLATION: %v\n", v)
	}
	if !res.OK() {
		os.Exit(1)
	}
	fmt.Println("all invariants hold on every reachable state")

	live := modelcheck.CheckLiveness(cfg)
	fmt.Printf("liveness: %d pending-request obligations over %d states\n",
		live.Checked, live.States)
	if !live.OK() {
		fmt.Printf("LIVENESS VIOLATIONS: %d requests with no granting continuation\n",
			live.Violations)
		os.Exit(1)
	}
	fmt.Println("every pending lease request has a granting continuation")
}
