// Command redplane-modelcheck explicitly model-checks the RedPlane
// replication protocol — the Go analogue of the paper's TLA+ specification
// (Appendix C). It explores every interleaving of the store, switch,
// lease-timer, and packet-generator processes within the configured
// bounds and checks the spec's invariants on each reachable state.
package main

import (
	"flag"
	"fmt"
	"os"

	"redplane/internal/modelcheck"
)

func main() {
	switches := flag.Int("switches", 2, "number of switch processes (max 3)")
	lease := flag.Int("lease", 2, "lease period in timer ticks")
	pkts := flag.Int("pkts", 3, "packet generator budget")
	maxStates := flag.Int("max-states", 0, "state bound (0 = 5M)")
	skewMargin := flag.Int("skew-margin", -1,
		"lease guard margin for the bounded-skew model in ticks (-1 = the derived safe margin Dmax+2E)")
	skewLease := flag.Int("skew-lease", 0, "bounded-skew model lease period in ticks (0 = default 6)")
	skewDelay := flag.Int("skew-delay", 0, "bounded-skew model max grant delay Dmax in ticks (0 = default 1)")
	skewBound := flag.Int("skew-bound", 0, "bounded-skew model skew bound E in ticks (0 = default 1)")
	flag.Parse()

	cfg := modelcheck.Config{
		Switches: *switches, LeasePeriod: *lease, TotalPkts: *pkts,
		MaxStates: *maxStates,
	}
	fmt.Printf("model: %d switches, lease period %d, %d packets\n",
		cfg.Switches, cfg.LeasePeriod, cfg.TotalPkts)
	res := modelcheck.Run(cfg)
	fmt.Printf("explored %d states, %d transitions, depth %d\n",
		res.States, res.Transitions, res.Depth)
	if res.Truncated {
		fmt.Println("NOTE: exploration truncated at the state bound")
	}
	fmt.Println("invariants checked: SingleOwnerInvariant, AtLeastOneAliveSwitch, WriteAckMatchesSeq")
	if res.Deadlocks > 0 {
		fmt.Printf("DEADLOCKS: %d non-terminal states with no enabled transition\n", res.Deadlocks)
	}
	for _, v := range res.Violations {
		fmt.Printf("VIOLATION: %v\n", v)
	}
	if !res.OK() {
		os.Exit(1)
	}
	fmt.Println("all invariants hold on every reachable state")

	live := modelcheck.CheckLiveness(cfg)
	fmt.Printf("liveness: %d pending-request obligations over %d states\n",
		live.Checked, live.States)
	if !live.OK() {
		fmt.Printf("LIVENESS VIOLATIONS: %d requests with no granting continuation\n",
			live.Violations)
		os.Exit(1)
	}
	fmt.Println("every pending lease request has a granting continuation")

	// Bounded-skew lease model: drifting switch clocks against the store's
	// reference clock, checking the guard-margin derivation of DESIGN.md
	// §12 (M ≥ Dmax + 2E). A deliberately undersized -skew-margin makes
	// this section fail — the exhaustive twin of the chaos harness's
	// -break-skew-margin self-test.
	scfg := modelcheck.DefaultSkewConfig()
	if *skewLease > 0 {
		scfg.LeasePeriod = *skewLease
	}
	if *skewDelay > 0 {
		scfg.DelayMax = *skewDelay
	}
	if *skewBound > 0 {
		scfg.SkewBound = *skewBound
	}
	scfg.Margin = scfg.SafeMargin()
	if *skewMargin >= 0 {
		scfg.Margin = *skewMargin
	}
	scfg.MaxStates = *maxStates
	fmt.Printf("skew model: lease %d, margin %d (safe ≥ %d), delay ≤ %d, skew ≤ ±%d\n",
		scfg.LeasePeriod, scfg.Margin, scfg.SafeMargin(), scfg.DelayMax, scfg.SkewBound)
	sres := modelcheck.RunSkew(scfg)
	fmt.Printf("explored %d states, %d transitions, depth %d\n",
		sres.States, sres.Transitions, sres.Depth)
	if sres.Truncated {
		fmt.Println("NOTE: skew exploration truncated at the state bound")
	}
	for _, v := range sres.Violations {
		fmt.Printf("VIOLATION: %s at depth %d: %+v\n", v.Invariant, v.Depth, v.State)
	}
	if !sres.OK() {
		os.Exit(1)
	}
	fmt.Println("SkewLeaseExclusion holds on every reachable state")
}
