#!/bin/sh
# e2e_ctl.sh — control-plane smoke with real processes and a kill -9.
#
# Builds redplane-ctl, redplane-store, and redplane-udpload; starts the
# daemon plus three durable stores that register with it (no static
# -next wiring — the daemon links the chain); drives a windowed sweep
# against the routed head; SIGKILLs the tail mid-deployment; asserts
# the daemon splices it out under a new view; restarts it and asserts
# it is resynced back in; then checks zero lost acked writes, chain
# digest agreement, and that /metrics parses as Prometheus exposition
# text.
#
# Usage:
#   scripts/e2e_ctl.sh [outdir]
#
# Writes ctl-status.json, ctl-metrics.txt, and the process logs into
# outdir (default .) for CI artifact upload.
set -eu
cd "$(dirname "$0")/.."

outdir="${1:-.}"
mkdir -p "$outdir"
ctl_port=19600
http_port=19601
p0=19610
p1=19611
p2=19612
flows=16
writes=4000
tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill "$p" 2>/dev/null || true; done
    cp "$tmp"/*.log "$outdir"/ 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

# fetch URL — curl or wget, whichever exists.
fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

wait_log() { # file pattern
    for _ in $(seq 1 100); do
        grep -q "$2" "$1" 2>/dev/null && return 0
        sleep 0.1
    done
    echo "FATAL: never saw '$2' in $1:" >&2
    cat "$1" >&2
    return 1
}

# wait_view members — polls /status until chain 0's view is exactly $1.
wait_view() {
    want="$1"
    for _ in $(seq 1 200); do
        got=$(fetch "http://127.0.0.1:$http_port/status" 2>/dev/null |
            sed -n 's/.*"members":\[\([^]]*\)\].*/\1/p') || got=""
        [ "$got" = "$want" ] && return 0
        sleep 0.1
    done
    echo "FATAL: view never became [$want]; last: [$got]" >&2
    return 1
}

echo "== build =="
go build -o "$tmp/ctl" ./cmd/redplane-ctl
go build -o "$tmp/store" ./cmd/redplane-store
go build -o "$tmp/load" ./cmd/redplane-udpload

echo "== start control plane =="
"$tmp/ctl" -listen 127.0.0.1:$ctl_port -http 127.0.0.1:$http_port \
    -chains "s0,s1,s2" -probe-interval 50ms >"$tmp/ctl.log" 2>&1 &
pids="$pids $!"
wait_log "$tmp/ctl.log" 'serving on'

echo "== start three durable stores (daemon links the chain) =="
i=0
for port in $p0 $p1 $p2; do
    name="s$i"
    "$tmp/store" -listen 127.0.0.1:$port -shards 2 -lease 10s \
        -wal-dir "$tmp/wal-$name" -ctl 127.0.0.1:$ctl_port -name "$name" \
        >"$tmp/$name.log" 2>&1 &
    eval "pid_$i=\$!"
    pids="$pids $!"
    wait_log "$tmp/$name.log" 'serving on'
    case $i in
    0) wait_view '"s0"' ;;
    1) wait_view '"s0","s1"' ;;
    2) wait_view '"s0","s1","s2"' ;;
    esac
    i=$((i + 1))
done

echo "== sweep against the routed head (hello handshake included) =="
"$tmp/load" -ctl 127.0.0.1:$ctl_port -flows $flows -writes $writes \
    -batch 16 -stall 50ms &
load_pid=$!
pids="$pids $load_pid"

sleep 0.3
echo "== kill -9 the tail mid-load =="
kill -9 "$pid_2"
wait "$pid_2" 2>/dev/null || true

echo "== daemon must splice it out =="
wait_view '"s0","s1"'

echo "== restart the tail over its WAL; daemon must resync it back in =="
"$tmp/store" -listen 127.0.0.1:$p2 -shards 2 -lease 10s \
    -wal-dir "$tmp/wal-s2" -ctl 127.0.0.1:$ctl_port -name s2 \
    >"$tmp/s2-restart.log" 2>&1 &
pids="$pids $!"
wait_log "$tmp/s2-restart.log" 'replayed [0-9]* WAL records'
wait_view '"s0","s1","s2"'

echo "== sweep must finish complete =="
wait "$load_pid"
pids=$(echo "$pids" | sed "s/ $load_pid//")

echo "== no lost acked writes across the kill =="
"$tmp/load" -addr 127.0.0.1:$p0 -flows $flows -writes $writes -verify

echo "== chain digest agreement =="
digests=$(fetch "http://127.0.0.1:$http_port/digests")
echo "$digests"
n=$(echo "$digests" | grep -o '"[0-9a-f]\{16\}"' | sort -u | wc -l)
[ "$(echo "$digests" | grep -o 's[0-9]' | sort -u | wc -l)" = 3 ] ||
    { echo "FATAL: expected 3 members in $digests" >&2; exit 1; }
[ "$n" = 1 ] || { echo "FATAL: digests diverge: $digests" >&2; exit 1; }

echo "== /metrics parses as Prometheus exposition text =="
fetch "http://127.0.0.1:$http_port/metrics" >"$outdir/ctl-metrics.txt"
fetch "http://127.0.0.1:$http_port/status" >"$outdir/ctl-status.json"
awk '
    /^# TYPE / { if (NF != 4) { print "bad TYPE line: " $0; exit 1 }; next }
    { if (NF != 2) { print "bad sample line: " $0; exit 1 } }
' "$outdir/ctl-metrics.txt"
for want in redplane_ctl_view_changes redplane_ctl_splice_outs redplane_ctl_rejoins; do
    grep -q "^$want " "$outdir/ctl-metrics.txt" ||
        { echo "FATAL: $want missing from /metrics" >&2; exit 1; }
done
splices=$(awk '$1 == "redplane_ctl_splice_outs" { print $2 }' "$outdir/ctl-metrics.txt")
rejoins=$(awk '$1 == "redplane_ctl_rejoins" { print $2 }' "$outdir/ctl-metrics.txt")
[ "$splices" -ge 1 ] && [ "$rejoins" -ge 2 ] ||
    { echo "FATAL: splice_outs=$splices rejoins=$rejoins" >&2; exit 1; }

echo "OK: kill -9 detected, view respliced, replica resynced, acked writes intact"
