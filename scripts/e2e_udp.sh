#!/bin/sh
# e2e_udp.sh — real-UDP loopback smoke with a kill -9 in the middle.
#
# Builds redplane-store and redplane-udpload, starts a durable sharded
# store, drives a windowed replication sweep against it, SIGKILLs the
# server, restarts it over the same WAL directory, and asserts every
# flow still holds its final acknowledged watermark — the paper's
# durability contract (acked => fsynced) across an unclean crash, on
# the real socket path rather than the simulator.
#
# Usage:
#   scripts/e2e_udp.sh [outdir]
#
# Writes goodput-udp.json (the sweep's goodput result, uploaded as a CI
# artifact) into outdir (default .).
set -eu
cd "$(dirname "$0")/.."

outdir="${1:-.}"
mkdir -p "$outdir"
port=19507
flows=32
writes=200
tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT

echo "== build =="
go build -o "$tmp/store" ./cmd/redplane-store
go build -o "$tmp/load" ./cmd/redplane-udpload

# wait_serving blocks until the store's startup line reaches its log —
# the socket is bound before the line is printed, so datagrams sent
# after it queue in the kernel even if Serve has not drained yet.
wait_serving() {
    for _ in $(seq 1 100); do
        grep -q 'serving on' "$1" 2>/dev/null && return 0
        sleep 0.1
    done
    echo "FATAL: store did not come up; log:" >&2
    cat "$1" >&2
    return 1
}

echo "== start durable store (2 shards, WAL in $tmp/wal) =="
"$tmp/store" -listen 127.0.0.1:$port -shards 2 -wal-dir "$tmp/wal" \
    >"$tmp/store1.log" 2>&1 &
pid=$!
wait_serving "$tmp/store1.log"

echo "== sweep: $flows flows x $writes writes =="
"$tmp/load" -addr 127.0.0.1:$port -flows $flows -writes $writes \
    -batch 4 -window 16 -json "$outdir/goodput-udp.json"

echo "== kill -9 the store mid-flight state =="
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "== restart over the same WAL =="
"$tmp/store" -listen 127.0.0.1:$port -shards 2 -wal-dir "$tmp/wal" \
    >"$tmp/store2.log" 2>&1 &
pid=$!
wait_serving "$tmp/store2.log"
grep 'replayed' "$tmp/store2.log" || true

echo "== verify watermarks survived the crash =="
"$tmp/load" -addr 127.0.0.1:$port -flows $flows -writes $writes -verify

echo "OK: acked writes survived kill -9 ($(grep -o 'replayed [0-9]* WAL records' "$tmp/store2.log" || echo 'recovery log missing'))"
