#!/bin/sh
# check.sh — the repo's CI gate: formatting, vet, the full test suite,
# and a race-detector pass over the concurrency-sensitive packages
# (internal/obs is read from test goroutines while the simulator writes;
# internal/core holds the hot-path atomics; internal/runner is the
# parallel trial executor, whose determinism tests double as its race
# proof; internal/store and internal/ring carry the sharded real-UDP
# server and its SPSC queues). The full-evaluation benchmarks skip
# themselves under -race (bench_test.go), so the race pass stays fast.
# The store/ring tests also run with -tags portablemmsg so the
# single-datagram syscall fallback cannot rot on Linux dev machines,
# where the recvmmsg/sendmmsg path is what the default build exercises.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (obs, core, runner, store, ring) =="
go test -race ./internal/obs/... ./internal/core/... ./internal/runner/... \
    ./internal/store/... ./internal/ring/...

echo "== go test -tags portablemmsg (store, ring) =="
go test -tags portablemmsg ./internal/store/... ./internal/ring/...

# Optional lint pass, gated behind CI_LINT=1 so the default gate needs
# nothing beyond the Go toolchain. Tools are installed on demand; if the
# install fails (offline sandbox), the pass is skipped, not failed.
if [ "${CI_LINT:-0}" = "1" ]; then
    echo "== staticcheck =="
    if command -v staticcheck >/dev/null 2>&1 ||
        go install honnef.co/go/tools/cmd/staticcheck@latest >/dev/null 2>&1; then
        PATH="$PATH:$(go env GOPATH)/bin" staticcheck ./...
    else
        echo "staticcheck unavailable (offline?), skipping"
    fi

    echo "== govulncheck =="
    if command -v govulncheck >/dev/null 2>&1 ||
        go install golang.org/x/vuln/cmd/govulncheck@latest >/dev/null 2>&1; then
        PATH="$PATH:$(go env GOPATH)/bin" govulncheck ./... || {
            echo "govulncheck reported findings" >&2
            exit 1
        }
    else
        echo "govulncheck unavailable (offline?), skipping"
    fi
fi

echo "OK"
