#!/bin/sh
# check.sh — the repo's CI gate: formatting, vet, the full test suite,
# and a race-detector pass over the concurrency-sensitive packages
# (internal/obs is read from test goroutines while the simulator writes;
# internal/core holds the hot-path atomics). The full-evaluation
# benchmarks skip themselves under -race (bench_test.go), so the race
# pass stays fast.
set -eu
cd "$(dirname "$0")/.."

echo "== gofmt =="
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt needed on:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet =="
go vet ./...

echo "== go build =="
go build ./...

echo "== go test =="
go test ./...

echo "== go test -race (obs, core) =="
go test -race ./internal/obs/... ./internal/core/...

echo "OK"
