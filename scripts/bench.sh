#!/bin/sh
# bench.sh — the benchmark baseline pipeline. Runs the hot-path
# micro-benchmarks (simulator event loop, wire encode/decode, packet
# pool, pipeline primitives, deployment packet path), the sustained-
# throughput batching sweep, the figure benchmarks, and a
# sequential-vs-parallel wall-clock comparison of the experiment and
# chaos drivers, then folds everything into a benchstat-friendly
# BENCH_<date>.json via cmd/benchjson. It also asserts that chaos
# verdicts are byte-identical with egress batching on and off.
#
# Usage:
#   scripts/bench.sh           # full run, writes BENCH_<today>.json
#   scripts/bench.sh -short    # CI smoke: micro benches + small wall clock
#
# Environment:
#   BASELINE=BENCH_old.json    # embed baseline numbers + % deltas
#   OUT=path.json              # override the output path
#
# To compare two snapshots with benchstat:
#   jq -r '.benchmarks[].raw' BENCH_a.json > a.txt
#   jq -r '.benchmarks[].raw' BENCH_b.json > b.txt
#   benchstat a.txt b.txt
set -eu
cd "$(dirname "$0")/.."

short=0
if [ "${1:-}" = "-short" ]; then
    short=1
fi
date=$(date +%F)
out="${OUT:-BENCH_${date}.json}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

echo "== micro-benchmarks (hot paths) =="
go test -run '^$' -benchmem \
    -bench 'SimAtStep|SimBurst|EventLoop|LinkSend|MessageMarshal|MessageUnmarshal|MessageCloneTruncated|ClonePooled|RegisterAdd|MatchTableLookup|ControlPlaneDo' \
    ./internal/netsim ./internal/wire ./internal/packet ./internal/pipeline \
    | tee "$tmp/micro.txt"
go test -run '^$' -benchmem -bench 'DeploymentPacketPath' . | tee "$tmp/path.txt"

echo "== throughput sweep (egress batching on vs off) =="
go test -run '^$' -benchtime 1x -bench 'ThroughputBatching' . | tee "$tmp/tput.txt"

echo "== durability cost (store volatile vs WAL + group commit) =="
go test -run '^$' -benchtime 1x -bench 'ThroughputDurability' . | tee "$tmp/dur.txt"

echo "== replication engines (chain vs quorum: goodput, p50, failover) =="
go test -run '^$' -benchtime 3x -bench 'EngineFailover' . | tee "$tmp/engines.txt"

if [ $short -eq 0 ]; then
    echo "== figure benchmarks =="
    go test -run '^$' -benchtime 1x -bench 'Fig8|Fig10|Fig13' . | tee "$tmp/figs.txt"
fi

echo "== wall clock: sequential vs parallel drivers =="
go build -o "$tmp/rpchaos" ./cmd/redplane-chaos
go build -o "$tmp/rpbench" ./cmd/redplane-bench
campaigns=10
scale=0.05
if [ $short -eq 1 ]; then
    campaigns=3
    scale=0.02
fi
# -parallel 1 is the sequential reference; -parallel 0 uses every core.
# The outputs must be byte-identical (the determinism tests in
# internal/runner assert the same property); the wall-clock ratio is the
# parallel runner's speedup on this machine.
for par in 1 0; do
    t0=$(date +%s%N)
    "$tmp/rpchaos" -seed 1 -campaigns $campaigns -parallel $par >"$tmp/chaos-$par.txt"
    t1=$(date +%s%N)
    printf 'BenchmarkWallClockChaos/campaigns=%d/parallel=%d \t1\t%d ns/op\n' \
        "$campaigns" "$par" "$((t1 - t0))" | tee -a "$tmp/wall.txt"

    t0=$(date +%s%N)
    "$tmp/rpbench" -scale $scale -parallel $par >"$tmp/bench-$par.txt"
    t1=$(date +%s%N)
    printf 'BenchmarkWallClockBench/scale=%s/parallel=%d \t1\t%d ns/op\n' \
        "$scale" "$par" "$((t1 - t0))" | tee -a "$tmp/wall.txt"
done
if ! cmp -s "$tmp/bench-1.txt" "$tmp/bench-0.txt"; then
    echo "FATAL: redplane-bench output differs between -parallel 1 and -parallel 0" >&2
    exit 1
fi
if ! grep -h 'campaigns passed' "$tmp/chaos-1.txt" >/dev/null; then
    echo "FATAL: chaos run did not complete" >&2
    exit 1
fi

echo "== chaos verdict equivalence: batching on vs off =="
# Same seeds, batching on (default window) vs off: every verdict must be
# byte-identical — coalescing may only change packet framing and timing,
# never protocol outcomes. The completed-op count (timing-dependent
# throughput, not a verdict) and the trailing wall-clock summary are the
# only permitted differences.
"$tmp/rpchaos" -seed 1 -campaigns $campaigns -parallel 0 -v \
    | sed '$d; s/ ops=[0-9]*//' >"$tmp/chaos-batch-on.txt"
"$tmp/rpchaos" -seed 1 -campaigns $campaigns -parallel 0 -v -batch-window 0 \
    | sed '$d; s/ ops=[0-9]*//' >"$tmp/chaos-batch-off.txt"
if ! cmp -s "$tmp/chaos-batch-on.txt" "$tmp/chaos-batch-off.txt"; then
    echo "FATAL: chaos verdicts differ between batching on and off" >&2
    diff "$tmp/chaos-batch-on.txt" "$tmp/chaos-batch-off.txt" >&2 || true
    exit 1
fi

echo "== chaos verdict equivalence: chain vs quorum engines =="
# Same seeds on the quorum engine: after stripping the engine tag and the
# timing-dependent op counts, every verdict line must match the chain
# run's byte for byte — the Replicator API's cross-engine contract.
"$tmp/rpchaos" -seed 1 -campaigns $campaigns -parallel 0 -v -engine quorum \
    | sed '$d; s/ ops=[0-9]*//; s/ engine=[a-z]*//' >"$tmp/chaos-eng-quorum.txt"
if ! cmp -s "$tmp/chaos-batch-on.txt" "$tmp/chaos-eng-quorum.txt"; then
    echo "FATAL: chaos verdicts differ between chain and quorum engines" >&2
    diff "$tmp/chaos-batch-on.txt" "$tmp/chaos-eng-quorum.txt" >&2 || true
    exit 1
fi

echo "== writing $out =="
cat "$tmp"/micro.txt "$tmp"/path.txt "$tmp"/tput.txt "$tmp"/dur.txt "$tmp"/engines.txt "$tmp"/figs.txt "$tmp"/wall.txt 2>/dev/null |
    go run ./cmd/benchjson -date "$date" -out "$out" \
        ${BASELINE:+-baseline "$BASELINE"} \
        -note "scripts/bench.sh$([ $short -eq 1 ] && echo ' -short' || true)"
echo "wrote $out"
