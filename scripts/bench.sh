#!/bin/sh
# bench.sh — the benchmark baseline pipeline. Runs the hot-path
# micro-benchmarks (simulator event loop, wire encode/decode, packet
# pool, pipeline primitives, deployment packet path), the sustained-
# throughput batching sweep, the figure benchmarks, and a
# sequential-vs-parallel wall-clock comparison of the experiment and
# chaos drivers, then folds everything into a benchstat-friendly
# BENCH_<date>.json via cmd/benchjson. It also asserts that chaos
# verdicts are byte-identical with egress batching on and off.
#
# Usage:
#   scripts/bench.sh           # full run, writes BENCH_<today>.json
#   scripts/bench.sh -short    # CI smoke: micro benches + small wall clock
#   scripts/bench.sh -udp      # real-UDP goodput only, writes
#                              # BENCH_<today>-udppath.json (CI perf gate)
#   scripts/bench.sh -flowspace # chain-count scale sweep only, writes
#                              # BENCH_<today>-flowspace.json (CI perf gate)
#   scripts/bench.sh -wan      # WAN consistency sweep only, writes
#                              # BENCH_<today>-wan.json (CI perf gate)
#
# Environment:
#   BASELINE=BENCH_old.json    # embed baseline numbers + % deltas
#   OUT=path.json              # override the output path
#   UDPOUT=path.json           # override the -udp output path
#   FLOWOUT=path.json          # override the -flowspace output path
#   WANOUT=path.json           # override the -wan output path
#
# To compare two snapshots with benchstat:
#   jq -r '.benchmarks[].raw' BENCH_a.json > a.txt
#   jq -r '.benchmarks[].raw' BENCH_b.json > b.txt
#   benchstat a.txt b.txt
set -eu
cd "$(dirname "$0")/.."

short=0
udponly=0
flowonly=0
wanonly=0
case "${1:-}" in
-short) short=1 ;;
-udp) udponly=1 ;;
-flowspace) flowonly=1 ;;
-wan) wanonly=1 ;;
esac
date=$(date +%F)
out="${OUT:-BENCH_${date}.json}"
udpout="${UDPOUT:-BENCH_${date}-udppath.json}"
flowout="${FLOWOUT:-BENCH_${date}-flowspace.json}"
wanout="${WANOUT:-BENCH_${date}-wan.json}"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT

# bench_udp measures the real-UDP server path: the pre-sharding shape
# (one goroutine, one datagram and one fsync per syscall) against the
# sharded recvmmsg/sendmmsg + group-commit path, volatile and durable,
# then derives machine-independent speedup ratios from the same run —
# CI's perf gate compares those against bench/udppath-floor.json, since
# absolute writes/s are not comparable across machines.
bench_udp() {
    echo "== real-UDP path goodput (sharded batched syscalls vs single-goroutine) =="
    go test -run '^$' -benchtime 3x -bench 'UDPGoodput' ./internal/store | tee "$tmp/udp.txt"
    awk '
    /^BenchmarkUDPGoodput\/durable\/baseline/  { for (i=1; i<NF; i++) if ($(i+1) == "writes/s") db = $i }
    /^BenchmarkUDPGoodput\/durable\/sharded/   { for (i=1; i<NF; i++) if ($(i+1) == "writes/s") ds = $i }
    /^BenchmarkUDPGoodput\/volatile\/baseline/ { for (i=1; i<NF; i++) if ($(i+1) == "writes/s") vb = $i }
    /^BenchmarkUDPGoodput\/volatile\/sharded/  { for (i=1; i<NF; i++) if ($(i+1) == "writes/s") vs = $i }
    END {
        if (db > 0 && ds > 0) printf "BenchmarkUDPGoodputSpeedup/durable \t1\t%.3f speedup\n", ds / db
        if (vb > 0 && vs > 0) printf "BenchmarkUDPGoodputSpeedup/volatile \t1\t%.3f speedup\n", vs / vb
    }' "$tmp/udp.txt" | tee -a "$tmp/udp.txt"
    go run ./cmd/benchjson -date "$date" -out "$udpout" \
        -note "scripts/bench.sh -udp (real-UDP goodput)" "$tmp/udp.txt"
    echo "wrote $udpout"
}

if [ $udponly -eq 1 ]; then
    bench_udp
    exit 0
fi

# bench_flowspace measures scale-out of the flow-space sharded store:
# the weak-scaling chain-count sweep, reduced to machine-independent
# ratios (scale-up over 1→8 chains, per-chain flatness) that CI's perf
# gate compares against bench/flowspace-floor.json. The raw Mpps are
# simulated-time rates — deterministic on a given tree, so a drop means
# a routing or protocol regression, not machine noise — but the gated
# floors are the ratios.
bench_flowspace() {
    echo "== flow-space sharding scale sweep (1 -> 8 chains, weak scaling) =="
    go test -run '^$' -benchtime 3x -bench 'FlowspaceScale' . | tee "$tmp/flow.txt"
    awk '
    /^BenchmarkFlowspaceScale/ {
        for (i = 1; i < NF; i++) {
            if ($(i+1) == "scaleup-x")   sx = $i
            if ($(i+1) == "flatness-%")  fl = $i
            if ($(i+1) == "1chain-Mpps") m1 = $i
        }
    }
    END {
        # Units pick the gate direction: "speedup"/"/s" regress on a drop,
        # anything else (the flatness deviation) regresses on a rise.
        if (sx > 0) printf "BenchmarkFlowspaceScaleRatio/scaleup \t1\t%.3f x-speedup\n", sx
        if (fl > 0) printf "BenchmarkFlowspaceScaleRatio/flatness-dev \t1\t%.3f %%dev\n", 100 - fl
        if (m1 > 0) printf "BenchmarkFlowspaceScaleRatio/chain-goodput \t1\t%.3f Mpkts/s\n", m1
    }' "$tmp/flow.txt" | tee -a "$tmp/flow.txt"
    go run ./cmd/benchjson -date "$date" -out "$flowout" \
        -note "scripts/bench.sh -flowspace (chain scale-out sweep)" "$tmp/flow.txt"
    echo "wrote $flowout"
}

if [ $flowonly -eq 1 ]; then
    bench_flowspace
    exit 0
fi

# bench_wan measures the cross-datacenter consistency trade-off: the
# closed-loop linearizable-vs-bounded RTT sweep, reduced to the gated
# numbers CI compares against bench/wan-floor.json — the 40 ms
# bounded-over-linearizable speedup plus both absolute goodputs. All
# three run in simulated time, so they are deterministic per tree.
bench_wan() {
    echo "== WAN consistency sweep (linearizable vs bounded, 0 -> 80 ms inter-DC RTT) =="
    go test -run '^$' -benchtime 3x -bench 'WANConsistency' . | tee "$tmp/wan.txt"
    awk '
    /^BenchmarkWANConsistency/ {
        for (i = 1; i < NF; i++) {
            if ($(i+1) == "speedup40-x")  sx = $i
            if ($(i+1) == "bnd40ms-kpps") bg = $i
            if ($(i+1) == "lin40ms-kpps") lg = $i
        }
    }
    END {
        if (sx > 0) printf "BenchmarkWANConsistencyRatio/speedup40 \t1\t%.3f x-speedup\n", sx
        if (bg > 0) printf "BenchmarkWANConsistencyRatio/bounded-goodput \t1\t%.3f kpkts/s\n", bg
        if (lg > 0) printf "BenchmarkWANConsistencyRatio/lin-goodput \t1\t%.3f kpkts/s\n", lg
    }' "$tmp/wan.txt" | tee -a "$tmp/wan.txt"
    go run ./cmd/benchjson -date "$date" -out "$wanout" \
        -note "scripts/bench.sh -wan (WAN consistency sweep)" "$tmp/wan.txt"
    echo "wrote $wanout"
}

if [ $wanonly -eq 1 ]; then
    bench_wan
    exit 0
fi

echo "== micro-benchmarks (hot paths) =="
go test -run '^$' -benchmem \
    -bench 'SimAtStep|SimBurst|EventLoop|LinkSend|MessageMarshal|MessageUnmarshal|MessageCloneTruncated|ClonePooled|RegisterAdd|MatchTableLookup|ControlPlaneDo' \
    ./internal/netsim ./internal/wire ./internal/packet ./internal/pipeline \
    | tee "$tmp/micro.txt"
go test -run '^$' -benchmem -bench 'DeploymentPacketPath' . | tee "$tmp/path.txt"

echo "== throughput sweep (egress batching on vs off) =="
go test -run '^$' -benchtime 1x -bench 'ThroughputBatching' . | tee "$tmp/tput.txt"

echo "== durability cost (store volatile vs WAL + group commit) =="
go test -run '^$' -benchtime 1x -bench 'ThroughputDurability' . | tee "$tmp/dur.txt"

echo "== replication engines (chain vs quorum: goodput, p50, failover) =="
go test -run '^$' -benchtime 3x -bench 'EngineFailover' . | tee "$tmp/engines.txt"

if [ $short -eq 0 ]; then
    echo "== figure benchmarks =="
    go test -run '^$' -benchtime 1x -bench 'Fig8|Fig10|Fig13' . | tee "$tmp/figs.txt"
fi

echo "== wall clock: sequential vs parallel drivers =="
go build -o "$tmp/rpchaos" ./cmd/redplane-chaos
go build -o "$tmp/rpbench" ./cmd/redplane-bench
campaigns=10
scale=0.05
if [ $short -eq 1 ]; then
    campaigns=3
    scale=0.02
fi
# -parallel 1 is the sequential reference; -parallel 0 uses every core.
# The outputs must be byte-identical (the determinism tests in
# internal/runner assert the same property); the wall-clock ratio is the
# parallel runner's speedup on this machine.
for par in 1 0; do
    t0=$(date +%s%N)
    "$tmp/rpchaos" -seed 1 -campaigns $campaigns -parallel $par >"$tmp/chaos-$par.txt"
    t1=$(date +%s%N)
    printf 'BenchmarkWallClockChaos/campaigns=%d/parallel=%d \t1\t%d ns/op\n' \
        "$campaigns" "$par" "$((t1 - t0))" | tee -a "$tmp/wall.txt"

    t0=$(date +%s%N)
    "$tmp/rpbench" -scale $scale -parallel $par >"$tmp/bench-$par.txt"
    t1=$(date +%s%N)
    printf 'BenchmarkWallClockBench/scale=%s/parallel=%d \t1\t%d ns/op\n' \
        "$scale" "$par" "$((t1 - t0))" | tee -a "$tmp/wall.txt"
done
if ! cmp -s "$tmp/bench-1.txt" "$tmp/bench-0.txt"; then
    echo "FATAL: redplane-bench output differs between -parallel 1 and -parallel 0" >&2
    exit 1
fi
if ! grep -h 'campaigns passed' "$tmp/chaos-1.txt" >/dev/null; then
    echo "FATAL: chaos run did not complete" >&2
    exit 1
fi

echo "== chaos verdict equivalence: batching on vs off =="
# Same seeds, batching on (default window) vs off: every verdict must be
# byte-identical — coalescing may only change packet framing and timing,
# never protocol outcomes. The completed-op count (timing-dependent
# throughput, not a verdict) and the trailing wall-clock summary are the
# only permitted differences.
"$tmp/rpchaos" -seed 1 -campaigns $campaigns -parallel 0 -v \
    | sed '$d; s/ ops=[0-9]*//' >"$tmp/chaos-batch-on.txt"
"$tmp/rpchaos" -seed 1 -campaigns $campaigns -parallel 0 -v -batch-window 0 \
    | sed '$d; s/ ops=[0-9]*//' >"$tmp/chaos-batch-off.txt"
if ! cmp -s "$tmp/chaos-batch-on.txt" "$tmp/chaos-batch-off.txt"; then
    echo "FATAL: chaos verdicts differ between batching on and off" >&2
    diff "$tmp/chaos-batch-on.txt" "$tmp/chaos-batch-off.txt" >&2 || true
    exit 1
fi

echo "== chaos verdict equivalence: chain vs quorum engines =="
# Same seeds on the quorum engine: after stripping the engine tag and the
# timing-dependent op counts, every verdict line must match the chain
# run's byte for byte — the Replicator API's cross-engine contract.
"$tmp/rpchaos" -seed 1 -campaigns $campaigns -parallel 0 -v -engine quorum \
    | sed '$d; s/ ops=[0-9]*//; s/ engine=[a-z]*//' >"$tmp/chaos-eng-quorum.txt"
if ! cmp -s "$tmp/chaos-batch-on.txt" "$tmp/chaos-eng-quorum.txt"; then
    echo "FATAL: chaos verdicts differ between chain and quorum engines" >&2
    diff "$tmp/chaos-batch-on.txt" "$tmp/chaos-eng-quorum.txt" >&2 || true
    exit 1
fi

echo "== writing $out =="
cat "$tmp"/micro.txt "$tmp"/path.txt "$tmp"/tput.txt "$tmp"/dur.txt "$tmp"/engines.txt "$tmp"/figs.txt "$tmp"/wall.txt 2>/dev/null |
    go run ./cmd/benchjson -date "$date" -out "$out" \
        ${BASELINE:+-baseline "$BASELINE"} \
        -note "scripts/bench.sh$([ $short -eq 1 ] && echo ' -short' || true)"
echo "wrote $out"
