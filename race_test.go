//go:build race

package redplane_test

// raceEnabled reports whether the race detector is compiled in; the
// full-evaluation benchmarks skip themselves under it (see bench_test.go).
const raceEnabled = true
